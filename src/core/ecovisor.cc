#include "core/ecovisor.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "util/logging.h"

namespace ecov::core {

using api::AppHandle;
using api::ContainerHandle;
using api::ErrorCode;
using api::Result;
using api::Status;

namespace {

Status
unknownApp(std::string_view app)
{
    return Status::error(ErrorCode::UnknownApp,
                         "Ecovisor: unknown app '" + std::string(app) +
                             "'");
}

Status
invalidHandle()
{
    return Status::error(ErrorCode::InvalidHandle,
                         "Ecovisor: invalid app handle");
}

/**
 * Resolve the settlement thread count: an explicit option wins,
 * otherwise the ECOV_THREADS environment variable, otherwise 1.
 * Clamped to [1, 256] — a typo like ECOV_THREADS=1e9 must not fork a
 * thread bomb.
 */
int
resolveThreads(int option_threads)
{
    long v = option_threads;
    if (v <= 0) {
        const char *env = std::getenv("ECOV_THREADS");
        v = (env && *env) ? std::strtol(env, nullptr, 10) : 1;
    }
    return static_cast<int>(std::clamp(v, 1L, 256L));
}

} // namespace

Ecovisor::Ecovisor(cop::Cluster *cluster,
                   energy::PhysicalEnergySystem *phys,
                   EcovisorOptions options)
    : cluster_(cluster), phys_(phys), options_(options),
      threads_(resolveThreads(options.threads))
{
    if (!cluster_)
        fatal("Ecovisor: null cluster");
    if (!phys_)
        fatal("Ecovisor: null physical energy system");

    // Install the retention policy before interning anything, so
    // every series — globals here, per-app/per-container later — is
    // uniformly bounded (or uniformly unbounded, the default).
    if (options_.retention_samples > 0 ||
        options_.retention_window_s > 0) {
        ts::RetentionConfig retention;
        if (options_.retention_samples > 0)
            retention.max_samples =
                static_cast<std::size_t>(options_.retention_samples);
        retention.window_s = options_.retention_window_s;
        db_.setDefaultRetention(retention);
    }

    // Pre-intern the global series: recording them is then a pure
    // indexed append. Interned-but-unwritten series are invisible to
    // the query surface, so doing this even with record_telemetry
    // off changes nothing observable.
    s_grid_carbon_ = db_.intern("grid_carbon", "");
    s_solar_w_ = db_.intern("solar_w", "");
    s_cluster_power_ = db_.intern("cluster_power_w", "");
    reserveExpected(s_grid_carbon_);
    reserveExpected(s_solar_w_);
    reserveExpected(s_cluster_power_);
}

void
Ecovisor::reserveExpected(ts::SeriesId id)
{
    const std::int64_t remaining =
        options_.expected_ticks - settled_ticks_;
    if (remaining > 0)
        db_.reserve(id, static_cast<std::size_t>(remaining));
}

// ---------------------------------------------------------------------
// v2: registration and name resolution.
// ---------------------------------------------------------------------

Result<AppHandle>
Ecovisor::tryAddApp(const std::string &app, const AppShareConfig &share)
{
    if (app.empty())
        return Status::error(ErrorCode::InvalidArgument,
                             "Ecovisor::addApp: empty app name");
    if (index_.count(app))
        return Status::error(ErrorCode::DuplicateApp,
                             "Ecovisor::addApp: duplicate app '" + app +
                                 "'");

    // A NaN share parameter would slip through every range check
    // below (all comparisons are false for NaN) and then poison the
    // aggregate share validation and settlement for *all* tenants, so
    // reject it up front.
    const bool nan_share =
        std::isnan(share.solar_fraction) || std::isnan(share.grid_max_w) ||
        (share.battery && (std::isnan(share.battery->capacity_wh) ||
                           std::isnan(share.battery->max_charge_w) ||
                           std::isnan(share.battery->max_discharge_w) ||
                           std::isnan(share.battery->initial_soc) ||
                           std::isnan(share.battery->soc_floor) ||
                           std::isnan(share.battery->soc_ceiling) ||
                           std::isnan(share.battery->efficiency)));
    if (nan_share)
        return Status::error(ErrorCode::InvalidArgument,
                             "Ecovisor::addApp: NaN share parameter");

    // Validate aggregate shares against the physical system (§3.3).
    double solar_total = share.solar_fraction;
    double cap_total = share.battery ? share.battery->capacity_wh : 0.0;
    double charge_total = share.battery ? share.battery->max_charge_w : 0.0;
    double discharge_total =
        share.battery ? share.battery->max_discharge_w : 0.0;
    for (const auto &st : apps_) {
        const auto &s = st.ves->share();
        solar_total += s.solar_fraction;
        if (s.battery) {
            cap_total += s.battery->capacity_wh;
            charge_total += s.battery->max_charge_w;
            discharge_total += s.battery->max_discharge_w;
        }
    }
    if (solar_total > 1.0 + 1e-9)
        return Status::error(ErrorCode::ShareViolation,
                             "Ecovisor::addApp: solar fractions exceed "
                             "100%");
    if (share.solar_fraction > 0.0 && !phys_->hasSolar())
        return Status::error(ErrorCode::NoSolar,
                             "Ecovisor::addApp: solar share without a "
                             "solar array");
    if (share.battery) {
        if (!phys_->hasBattery())
            return Status::error(ErrorCode::NoBattery,
                                 "Ecovisor::addApp: battery share "
                                 "without a battery");
        const auto &pb = phys_->battery().config();
        if (cap_total > pb.capacity_wh + 1e-9)
            return Status::error(ErrorCode::ShareViolation,
                                 "Ecovisor::addApp: battery capacity "
                                 "oversubscribed");
        if (charge_total > pb.max_charge_w + 1e-9)
            return Status::error(ErrorCode::ShareViolation,
                                 "Ecovisor::addApp: battery charge "
                                 "rate oversubscribed");
        if (discharge_total > pb.max_discharge_w + 1e-9)
            return Status::error(ErrorCode::ShareViolation,
                                 "Ecovisor::addApp: battery discharge "
                                 "oversubscribed");
    }

    AppState st;
    st.name = app;
    // Intern the name in the COP now so every later container walk
    // (settlement, telemetry, EcoLib) is index-addressed.
    st.cop_app = cluster_->internApp(app);
    st.solar_fraction = share.solar_fraction;
    // The VES constructor validates per-app config (fraction range,
    // grid limit, battery parameters) by throwing; convert to the
    // structured error model here so tenant input can never throw
    // through the v2 surface.
    try {
        st.ves = std::make_unique<VirtualEnergySystem>(app, share);
    } catch (const FatalError &e) {
        return Status::error(ErrorCode::InvalidArgument, e.what());
    }

    // Intern every per-app telemetry series now (registration is the
    // one-time setup path) so per-tick recording never touches a
    // string key. BattSoc is interned even without a battery share —
    // it just stays empty, which the query surface hides.
    st.series.power = db_.intern("app_power_w", app);
    st.series.grid = db_.intern("app_grid_w", app);
    st.series.solar_used = db_.intern("app_solar_used_w", app);
    st.series.batt_discharge = db_.intern("app_batt_discharge_w", app);
    st.series.batt_charge = db_.intern("app_batt_charge_w", app);
    st.series.carbon = db_.intern("app_carbon_g", app);
    st.series.soc = db_.intern("app_batt_soc", app);
    st.series.containers = db_.intern("app_containers", app);
    for (ts::SeriesId id :
         {st.series.power, st.series.grid, st.series.solar_used,
          st.series.batt_discharge, st.series.batt_charge,
          st.series.carbon, st.series.soc, st.series.containers})
        reserveExpected(id);

    const auto idx = static_cast<std::int32_t>(apps_.size());
    apps_.push_back(std::move(st));
    index_.emplace(app, idx);
    return AppHandle(idx);
}

Result<AppHandle>
Ecovisor::findApp(std::string_view app) const
{
    auto it = index_.find(app);
    if (it == index_.end())
        return unknownApp(app);
    return AppHandle(it->second);
}

Result<std::string>
Ecovisor::appName(AppHandle h) const
{
    const AppState *st = state(h);
    if (!st)
        return invalidHandle();
    return st->name;
}

Ecovisor::AppState *
Ecovisor::state(AppHandle h)
{
    if (!h.valid() ||
        static_cast<std::size_t>(h.index()) >= apps_.size())
        return nullptr;
    return &apps_[static_cast<std::size_t>(h.index())];
}

const Ecovisor::AppState *
Ecovisor::state(AppHandle h) const
{
    if (!h.valid() ||
        static_cast<std::size_t>(h.index()) >= apps_.size())
        return nullptr;
    return &apps_[static_cast<std::size_t>(h.index())];
}

Ecovisor::AppState *
Ecovisor::findState(std::string_view app)
{
    auto it = index_.find(app);
    return it == index_.end()
               ? nullptr
               : &apps_[static_cast<std::size_t>(it->second)];
}

const Ecovisor::AppState *
Ecovisor::findState(std::string_view app) const
{
    auto it = index_.find(app);
    return it == index_.end()
               ? nullptr
               : &apps_[static_cast<std::size_t>(it->second)];
}

const Ecovisor::AppState &
Ecovisor::appState(const std::string &app) const
{
    const AppState *st = findState(app);
    if (!st)
        fatal("Ecovisor: unknown app '" + app + "'");
    return *st;
}

// ---------------------------------------------------------------------
// v2: setters.
// ---------------------------------------------------------------------

Status
Ecovisor::setBatteryChargeRate(AppHandle h, double rate_w)
{
    AppState *st = state(h);
    if (!st)
        return invalidHandle();
    // The VES owns the rate validation (negative/NaN rejection) and
    // its message; convert its throw to the structured error model.
    try {
        st->ves->setChargeRateW(rate_w);
    } catch (const FatalError &e) {
        return Status::error(ErrorCode::InvalidArgument, e.what());
    }
    return Status::okStatus();
}

Status
Ecovisor::setBatteryMaxDischarge(AppHandle h, double rate_w)
{
    AppState *st = state(h);
    if (!st)
        return invalidHandle();
    try {
        st->ves->setMaxDischargeW(rate_w);
    } catch (const FatalError &e) {
        return Status::error(ErrorCode::InvalidArgument, e.what());
    }
    return Status::okStatus();
}

Status
Ecovisor::setContainerPowercap(ContainerHandle c, double cap_w)
{
    // O(1) slab resolution: an invalid handle and a handle whose
    // container was destroyed (generation mismatch) fail identically.
    const cop::Container *ct = cluster_->find(c.ref());
    if (!ct)
        return Status::error(ErrorCode::UnknownContainer,
                             "Ecovisor::setContainerPowercap: unknown "
                             "container");
    if (cap_w < 0.0 || std::isnan(cap_w))
        return Status::error(ErrorCode::InvalidArgument,
                             "Ecovisor::setContainerPowercap: negative "
                             "cap");
    const cop::ContainerId id = ct->id;
    if (std::isinf(cap_w)) {
        powercaps_w_.erase(id);
        cluster_->setUtilizationCap(id, 1.0);
        return Status::okStatus();
    }
    powercaps_w_[id] = cap_w;
    cluster_->setUtilizationCap(
        id, cluster_->utilizationCapForPower(id, cap_w));
    return Status::okStatus();
}

Status
Ecovisor::applyCapBatch(const api::CapBatch &batch)
{
    // Validate the whole batch before staging anything: a rejected
    // batch must leave no trace (all-or-nothing semantics).
    for (const auto &req : batch.requests()) {
        if (!cluster_->find(req.container.ref()))
            return Status::error(ErrorCode::UnknownContainer,
                                 "Ecovisor::applyCapBatch: unknown "
                                 "container");
        if (req.cap_w < 0.0 || std::isnan(req.cap_w))
            return Status::error(ErrorCode::InvalidArgument,
                                 "Ecovisor::applyCapBatch: negative "
                                 "cap");
    }
    staged_caps_.insert(staged_caps_.end(), batch.requests().begin(),
                        batch.requests().end());
    return Status::okStatus();
}

void
Ecovisor::commitStagedCaps()
{
    for (const auto &req : staged_caps_) {
        // A container revoked between staging and settlement is
        // skipped, exactly as applyPowercaps() prunes stale caps —
        // the generation check also skips a recycled slot, so a cap
        // staged for a dead container can never leak onto its
        // successor.
        const cop::Container *ct = cluster_->find(req.container.ref());
        if (!ct)
            continue;
        if (std::isinf(req.cap_w)) {
            powercaps_w_.erase(ct->id);
            cluster_->setUtilizationCap(ct->id, 1.0);
        } else {
            powercaps_w_[ct->id] = req.cap_w;
        }
    }
    staged_caps_.clear();
}

// ---------------------------------------------------------------------
// v2: getters.
// ---------------------------------------------------------------------

TimeS
Ecovisor::currentTime() const
{
    // During a tick, dispatchTickCallbacks()/settleTick() record the
    // tick's start; between runs fall back to the tick after the last
    // settlement (signals are piecewise constant per tick).
    return std::max({now_hint_s_, last_settled_s_ + last_dt_s_,
                     TimeS{0}});
}

double
Ecovisor::siteSolarWNow() const
{
    // Sensor blackout: serve the last settled reading, never a live
    // (or extrapolated) one — the snapshot's stale flag tells the
    // tenant what it is getting (docs/FAULTS.md). Outside a blackout
    // the live value reflects any active derate, because the derated
    // array *is* what the site's sensors would measure.
    if (faults_.sensor_blackout)
        return last_site_solar_w_;
    double solar_w = phys_->solarPowerAt(currentTime());
    if (faults_.solar_derate != 1.0)
        solar_w *= faults_.solar_derate;
    return solar_w;
}

double
Ecovisor::gridCarbonNow() const
{
    if (faults_.sensor_blackout)
        return last_intensity_;
    return phys_->gridCarbonAt(currentTime());
}

Result<double>
Ecovisor::getSolarPower(AppHandle h) const
{
    const AppState *st = state(h);
    if (!st)
        return invalidHandle();
    return st->solar_fraction * siteSolarWNow();
}

Result<double>
Ecovisor::getGridPower(AppHandle h) const
{
    const AppState *st = state(h);
    if (!st)
        return invalidHandle();
    return st->ves->lastSettlement().grid_w;
}

Result<double>
Ecovisor::getBatteryDischargeRate(AppHandle h) const
{
    const AppState *st = state(h);
    if (!st)
        return invalidHandle();
    return st->ves->lastSettlement().batt_discharge_w;
}

Result<double>
Ecovisor::getBatteryChargeLevel(AppHandle h) const
{
    const AppState *st = state(h);
    if (!st)
        return invalidHandle();
    return st->ves->hasBattery() ? st->ves->battery().energyWh() : 0.0;
}

Result<double>
Ecovisor::getContainerPowercap(ContainerHandle c) const
{
    const cop::Container *ct = cluster_->find(c.ref());
    if (!ct)
        return Status::error(ErrorCode::UnknownContainer,
                             "Ecovisor::getContainerPowercap: unknown "
                             "container");
    auto it = powercaps_w_.find(ct->id);
    return it == powercaps_w_.end() ? kUnlimitedW : it->second;
}

Result<double>
Ecovisor::getContainerPower(ContainerHandle c) const
{
    if (!cluster_->find(c.ref()))
        return Status::error(ErrorCode::UnknownContainer,
                             "Ecovisor::getContainerPower: unknown "
                             "container");
    return cluster_->containerPowerW(c.ref());
}

Result<api::EnergySnapshot>
Ecovisor::getEnergySnapshot(AppHandle h) const
{
    const AppState *st = state(h);
    if (!st)
        return invalidHandle();
    const TimeS now = currentTime();
    const TickSettlement &s = st->ves->lastSettlement();
    api::EnergySnapshot snap;
    if (faults_.sensor_blackout) {
        snap.solar_w = st->solar_fraction * last_site_solar_w_;
        snap.grid_carbon_g_per_kwh = last_intensity_;
        snap.stale = true;
    } else {
        double site_solar_w = phys_->solarPowerAt(now);
        if (faults_.solar_derate != 1.0)
            site_solar_w *= faults_.solar_derate;
        snap.solar_w = st->solar_fraction * site_solar_w;
        snap.grid_carbon_g_per_kwh = phys_->gridCarbonAt(now);
    }
    snap.grid_w = s.grid_w;
    snap.battery_discharge_w = s.batt_discharge_w;
    snap.battery_charge_level_wh =
        st->ves->hasBattery() ? st->ves->battery().energyWh() : 0.0;
    return snap;
}

Status
Ecovisor::registerTickCallback(AppHandle h, TickCallback cb)
{
    if (!cb)
        return Status::error(ErrorCode::InvalidArgument,
                             "Ecovisor::registerTickCallback: null "
                             "callback");
    AppState *st = state(h);
    if (!st)
        return invalidHandle();
    st->callbacks.push_back(std::move(cb));
    return Status::okStatus();
}

const VirtualEnergySystem *
Ecovisor::ves(AppHandle h) const
{
    const AppState *st = state(h);
    return st ? st->ves.get() : nullptr;
}

Result<const VirtualEnergySystem *>
Ecovisor::tryVes(std::string_view app) const
{
    const AppState *st = findState(app);
    if (!st)
        return unknownApp(app);
    return st->ves.get();
}

cop::AppIndex
Ecovisor::copAppIndex(api::AppHandle h) const
{
    const AppState *st = state(h);
    return st ? st->cop_app : cop::kInvalidApp;
}

Result<ts::SeriesId>
Ecovisor::appSeriesId(api::AppHandle h, api::AppMetric m) const
{
    const AppState *st = state(h);
    if (!st)
        return invalidHandle();
    switch (m) {
      case api::AppMetric::PowerW:
        return st->series.power;
      case api::AppMetric::GridW:
        return st->series.grid;
      case api::AppMetric::SolarUsedW:
        return st->series.solar_used;
      case api::AppMetric::BattDischargeW:
        return st->series.batt_discharge;
      case api::AppMetric::BattChargeW:
        return st->series.batt_charge;
      case api::AppMetric::CarbonG:
        return st->series.carbon;
      case api::AppMetric::BattSoc:
        return st->series.soc;
      case api::AppMetric::Containers:
        return st->series.containers;
    }
    return Status::error(ErrorCode::InvalidArgument,
                         "Ecovisor::appSeriesId: unknown metric");
}

Result<ts::SeriesId>
Ecovisor::containerSeriesId(api::ContainerHandle c,
                            api::ContainerMetric m)
{
    const cop::Container *ct = cluster_->find(c.ref());
    if (!ct)
        return Status::error(ErrorCode::UnknownContainer,
                             "Ecovisor::containerSeriesId: unknown "
                             "container");
    ensureContainerSeries(*ct, c.ref().slot);
    const cop::SlotSeriesCache &cache =
        cluster_->seriesCache(c.ref().slot);
    switch (m) {
      case api::ContainerMetric::PowerW:
        return static_cast<ts::SeriesId>(cache.power);
      case api::ContainerMetric::CarbonG:
        return static_cast<ts::SeriesId>(cache.carbon);
    }
    return Status::error(ErrorCode::InvalidArgument,
                         "Ecovisor::containerSeriesId: unknown metric");
}

// ---------------------------------------------------------------------
// v1 compat shims.
// ---------------------------------------------------------------------

void
Ecovisor::addApp(const std::string &app, const AppShareConfig &share)
{
    tryAddApp(app, share).status().orFatal();
}

bool
Ecovisor::hasApp(const std::string &app) const
{
    return index_.count(app) > 0;
}

std::vector<std::string>
Ecovisor::appNames() const
{
    std::vector<std::string> out;
    out.reserve(index_.size());
    for (const auto &kv : index_)
        out.push_back(kv.first);
    return out;
}

void
Ecovisor::setContainerPowercap(cop::ContainerId id, double cap_w)
{
    setContainerPowercap(api::handleOf(*cluster_, id), cap_w).orFatal();
}

void
Ecovisor::setBatteryChargeRate(const std::string &app, double rate_w)
{
    // findApp and the v2 setter reproduce the seed's messages
    // (unknown app first, then the VES rate validation) exactly.
    setBatteryChargeRate(findApp(app).value(), rate_w).orFatal();
}

void
Ecovisor::setBatteryMaxDischarge(const std::string &app, double rate_w)
{
    setBatteryMaxDischarge(findApp(app).value(), rate_w).orFatal();
}

double
Ecovisor::getSolarPower(const std::string &app) const
{
    const AppState &st = appState(app);
    return st.solar_fraction * siteSolarWNow();
}

double
Ecovisor::getGridPower(const std::string &app) const
{
    return appState(app).ves->lastSettlement().grid_w;
}

double
Ecovisor::getGridCarbon() const
{
    return gridCarbonNow();
}

double
Ecovisor::getBatteryDischargeRate(const std::string &app) const
{
    return appState(app).ves->lastSettlement().batt_discharge_w;
}

double
Ecovisor::getBatteryChargeLevel(const std::string &app) const
{
    const AppState &st = appState(app);
    return st.ves->hasBattery() ? st.ves->battery().energyWh() : 0.0;
}

double
Ecovisor::getContainerPowercap(cop::ContainerId id) const
{
    // Seed semantics: unknown or revoked containers read as uncapped
    // (the edge tests rely on this after container churn), so this
    // shim does not route through the checked v2 getter.
    auto it = powercaps_w_.find(id);
    return it == powercaps_w_.end() ? kUnlimitedW : it->second;
}

double
Ecovisor::getContainerPower(cop::ContainerId id) const
{
    return cluster_->containerPowerW(id);
}

void
Ecovisor::registerTickCallback(const std::string &app, TickCallback cb)
{
    if (!cb)
        fatal("Ecovisor::registerTickCallback: null callback");
    AppState *st = findState(app);
    if (!st)
        fatal("Ecovisor: unknown app '" + app + "'");
    st->callbacks.push_back(std::move(cb));
}

const VirtualEnergySystem &
Ecovisor::ves(const std::string &app) const
{
    return *appState(app).ves;
}

// ---------------------------------------------------------------------
// Tick dispatch + settlement.
// ---------------------------------------------------------------------

void
Ecovisor::attach(sim::Simulation &simulation)
{
    // Clock hint first: getters called from any later phase of this
    // tick (including policies registered directly with the
    // simulation) evaluate signals at the tick's start time.
    simulation.addListener(
        [this](TimeS start_s, TimeS) { now_hint_s_ = start_s; },
        sim::TickPhase::Environment, "ecovisor-clock");
    simulation.addListener(
        [this](TimeS start_s, TimeS dt_s) {
            dispatchTickCallbacks(start_s, dt_s);
        },
        sim::TickPhase::Policy, "ecovisor-upcalls");
    simulation.addListener(
        [this](TimeS start_s, TimeS dt_s) { settleTick(start_s, dt_s); },
        sim::TickPhase::Accounting, "ecovisor-settle");
}

void
Ecovisor::dispatchTickCallbacks(TimeS start_s, TimeS dt_s)
{
    now_hint_s_ = start_s;
    // Re-resolve apps_[idx] on every access instead of holding a
    // reference: a callback may legally call tryAddApp(), which can
    // reallocate the contiguous app vector mid-dispatch (index_ map
    // nodes are stable, so the outer iteration is safe either way).
    for (const auto &kv : index_) {
        const auto idx = static_cast<std::size_t>(kv.second);
        for (std::size_t i = 0; i < apps_[idx].callbacks.size(); ++i)
            apps_[idx].callbacks[i](start_s, dt_s);
    }
}

void
Ecovisor::applyPowercaps()
{
    for (auto it = powercaps_w_.begin(); it != powercaps_w_.end();) {
        if (!cluster_->exists(it->first)) {
            it = powercaps_w_.erase(it);
            continue;
        }
        cluster_->setUtilizationCap(
            it->first,
            cluster_->utilizationCapForPower(it->first, it->second));
        ++it;
    }
}

void
Ecovisor::settleApp(AppState &st, double solar_w, double intensity,
                    TimeS start_s, TimeS dt_s,
                    const SettleLimits &limits)
{
    // appPowerW walks only this app's container list, streaming the
    // slab's SoA hot columns (cop/columns.h; O(1) when its cached
    // aggregate is clean); with sharded settlement each app — and
    // therefore each COP-side aggregate cache — belongs to exactly
    // one worker, so the walk is race-free.
    const double app_solar_w = st.solar_fraction * solar_w;
    const double demand_w = cluster_->appPowerW(st.cop_app);
    st.ves->settle(demand_w, app_solar_w, intensity, start_s, dt_s,
                   limits);
}

bool
Ecovisor::applyEmergencyCaps(double site_solar_w, TimeS dt_s)
{
    // Recompute from scratch each outage tick: last tick's emergency
    // caps would otherwise compound (a capped container reports less
    // power, shrinking next tick's budget). Tenant powercaps were
    // re-applied by applyPowercaps() just above, so clearing only
    // touches containers with no tenant cap of their own.
    clearEmergencyCaps();
    bool any_capped = false;
    for (AppState *stp : settle_order_) {
        AppState &st = *stp;
        // The islanded budget: owned solar plus whatever the app's
        // battery may discharge this tick. An exact bound — if the
        // budget cannot serve the demand, the demand is cut, never
        // optimistically carried.
        double avail_w = st.solar_fraction * site_solar_w;
        if (st.ves->hasBattery() && !faults_.battery_offline) {
            const energy::Battery &b = st.ves->battery();
            avail_w += std::min(st.ves->maxDischargeW(),
                                b.maxDischargePowerW(dt_s));
        }
        const double demand_w = cluster_->appPowerW(st.cop_app);
        if (demand_w <= 0.0 || demand_w <= avail_w)
            continue;
        const double scale = avail_w / demand_w;
        any_capped = true;
        cluster_->forEachAppContainer(
            st.cop_app, [&](const cop::Container &c) {
                const double target_w =
                    cluster_->containerPowerW(c) * scale;
                cluster_->setUtilizationCap(
                    c.id,
                    cluster_->utilizationCapForPower(c.id, target_w));
                emergency_capped_.push_back(c.id);
            });
    }
    return any_capped;
}

void
Ecovisor::clearEmergencyCaps()
{
    for (cop::ContainerId id : emergency_capped_) {
        if (!cluster_->exists(id))
            continue;
        // Containers with a tenant powercap got it re-applied this
        // tick by applyPowercaps(); only the rest revert to uncapped.
        if (powercaps_w_.count(id))
            continue;
        cluster_->setUtilizationCap(id, 1.0);
    }
    emergency_capped_.clear();
}

void
Ecovisor::settleTick(TimeS start_s, TimeS dt_s)
{
    if (dt_s <= 0)
        fatal("Ecovisor::settleTick: non-positive tick");
    now_hint_s_ = start_s;

    // Fault plane first: resolve the tick's active fault set from the
    // armed schedule (fault::FaultInjector) before the transport
    // commit point runs, so tenant requests committed this tick
    // already observe the tick's faults. No hook, no faults — and no
    // cost (docs/FAULTS.md).
    if (fault_hook_)
        fault_hook_(start_s, dt_s);

    // Pre-settle hook: a transport front-end (net::ServerCore) commits
    // its per-tick coalesced tenant requests here, in its own canonical
    // order, before anything below reads cluster or cap state. Runs
    // sequentially, so the hook may freely call the v2 surface —
    // including applyCapBatch(), whose staged entries then commit in
    // this very tick via commitStagedCaps() below.
    if (pre_settle_hook_)
        pre_settle_hook_(start_s, dt_s);

    // Commit any staged CapBatch, then re-apply watt caps:
    // allocations may have changed this tick.
    commitStagedCaps();
    applyPowercaps();

    double solar_w = phys_->solarPowerAt(start_s);
    const double intensity = phys_->gridCarbonAt(start_s);

    // Arm this tick's fault limits. Every branch below is false on
    // the healthy path, leaving the arithmetic untouched — the fault
    // plane is bit-identical zero-cost until a schedule arms it.
    SettleLimits limits;
    const bool degraded = faults_.any();
    if (degraded) {
        if (faults_.solar_derate != 1.0)
            solar_w *= faults_.solar_derate;
        limits.grid_available = !faults_.grid_out;
        limits.battery_available = !faults_.battery_offline;
        limits.battery_capacity_factor = faults_.battery_capacity_factor;
        ++degraded_ticks_;
    }

    // Canonical settlement order (sorted by name — the order the
    // seed's name-keyed map iterated in). Pointers stay valid for
    // the whole tick: nothing below registers apps.
    settle_order_.clear();
    settle_order_.reserve(apps_.size());
    for (const auto &kv : index_)
        settle_order_.push_back(
            &apps_[static_cast<std::size_t>(kv.second)]);

    // Grid outage: clamp demand to each app's grid-safe budget before
    // settlement reads container power; lift the clamps on the first
    // healthy tick after the outage.
    bool emergency = false;
    if (degraded && faults_.grid_out)
        emergency = applyEmergencyCaps(solar_w, dt_s);
    else if (!emergency_capped_.empty())
        clearEmergencyCaps();

    // Per-app settlement is independent (disjoint VES + COP state),
    // so shard it across the pool. Every cross-app reduction below
    // runs sequentially in canonical order after the join, which is
    // what keeps results bit-identical at any ECOV_THREADS value.
    runSharded([&](AppState &st) {
        settleApp(st, solar_w, intensity, start_s, dt_s, limits);
    });

    double owned_solar_fraction = 0.0;
    double total_grid_w = 0.0;
    double total_curtailed_w = 0.0;
    double total_unserved_w = 0.0;

    for (AppState *stp : settle_order_) {
        AppState &st = *stp;
        owned_solar_fraction += st.solar_fraction;
        const TickSettlement &s = st.ves->lastSettlement();
        total_grid_w += s.grid_w;
        total_curtailed_w += s.curtailed_w;
        total_unserved_w += s.unserved_w;
    }

    if (total_unserved_w > 0.0)
        unserved_wh_ += energyWh(total_unserved_w, dt_s);
    if (emergency || total_unserved_w > 0.0)
        ++slo_violation_ticks_;

    // Solar not owned by any app is excess by definition.
    total_curtailed_w += (1.0 - owned_solar_fraction) * solar_w;

    // Excess-solar policy (§3.1: reclaim & redistribute, net meter,
    // or curtail).
    if (total_curtailed_w > 1e-12) {
        if (options_.excess_solar == ExcessSolarPolicy::Redistribute) {
            for (const auto &kv : index_) {
                if (total_curtailed_w <= 1e-12)
                    break;
                double took =
                    apps_[static_cast<std::size_t>(kv.second)]
                        .ves->absorbRedistributedSolar(
                            total_curtailed_w, dt_s);
                total_curtailed_w -= took;
            }
            curtailed_wh_ += energyWh(total_curtailed_w, dt_s);
        } else if (options_.excess_solar == ExcessSolarPolicy::NetMeter) {
            net_metered_wh_ += energyWh(total_curtailed_w, dt_s);
        } else {
            curtailed_wh_ += energyWh(total_curtailed_w, dt_s);
        }
    }

    // Meter the aggregate grid draw (global energy + carbon books).
    if (phys_->hasGrid() && total_grid_w > 0.0)
        phys_->grid()->draw(total_grid_w, start_s, dt_s);

    // Mirror the aggregate virtual battery state into the physical
    // bank so its SOC stays consistent with the sum of shares.
    if (phys_->hasBattery())
        phys_->battery().setEnergyWh(aggregateBatteryWh());

    last_settled_s_ = start_s;
    last_dt_s_ = dt_s;
    // The blackout staleness source: the exact values this settlement
    // used (including any derate), never re-evaluated later.
    last_site_solar_w_ = solar_w;
    last_intensity_ = intensity;

    if (options_.record_telemetry)
        recordTelemetry(start_s);
    // After recording: a series interned during tick k still has all
    // expected_ticks - k of its appends ahead of it.
    ++settled_ticks_;
}

// ---------------------------------------------------------------------
// Checkpoint/restore.
// ---------------------------------------------------------------------

EcovisorImage
Ecovisor::captureState() const
{
    if (!staged_caps_.empty())
        fatal("Ecovisor::captureState: staged caps pending (snapshot "
              "only at a tick boundary)");
    EcovisorImage img;
    img.apps.reserve(apps_.size());
    for (const AppState &st : apps_) {
        EcovisorImage::AppImage ai;
        ai.name = st.name;
        ai.share = st.ves->share();
        ai.ves = st.ves->captureState();
        img.apps.push_back(std::move(ai));
    }
    img.powercaps.reserve(powercaps_w_.size());
    for (const auto &[id, cap_w] : powercaps_w_)
        img.powercaps.emplace_back(id, cap_w);
    img.emergency_capped = emergency_capped_;
    img.degraded_ticks = degraded_ticks_;
    img.slo_violation_ticks = slo_violation_ticks_;
    img.unserved_wh = unserved_wh_;
    img.net_metered_wh = net_metered_wh_;
    img.curtailed_wh = curtailed_wh_;
    img.last_settled_s = last_settled_s_;
    img.last_dt_s = last_dt_s_;
    img.last_site_solar_w = last_site_solar_w_;
    img.last_intensity = last_intensity_;
    img.settled_ticks = settled_ticks_;
    return img;
}

void
Ecovisor::restoreState(const EcovisorImage &image)
{
    if (!apps_.empty())
        fatal("Ecovisor::restoreState: apps already registered "
              "(restore targets a fresh instance)");
    // settled_ticks_ first: reserveExpected sizes each re-interned
    // series for the horizon still ahead, not the whole run.
    settled_ticks_ = image.settled_ticks;
    for (const EcovisorImage::AppImage &ai : image.apps) {
        auto r = tryAddApp(ai.name, ai.share);
        if (!r.ok())
            fatal("Ecovisor::restoreState: re-registration failed: " +
                  r.status().message());
        apps_[static_cast<std::size_t>(r.value().index())]
            .ves->restoreState(ai.ves);
    }
    powercaps_w_.clear();
    for (const auto &[id, cap_w] : image.powercaps)
        powercaps_w_.emplace(id, cap_w);
    emergency_capped_ = image.emergency_capped;
    degraded_ticks_ = image.degraded_ticks;
    slo_violation_ticks_ = image.slo_violation_ticks;
    unserved_wh_ = image.unserved_wh;
    net_metered_wh_ = image.net_metered_wh;
    curtailed_wh_ = image.curtailed_wh;
    last_settled_s_ = image.last_settled_s;
    last_dt_s_ = image.last_dt_s;
    last_site_solar_w_ = image.last_site_solar_w;
    last_intensity_ = image.last_intensity;
    now_hint_s_ = image.last_settled_s;
}

double
Ecovisor::aggregateBatteryWh() const
{
    double total = 0.0;
    for (const auto &st : apps_) {
        if (st.ves->hasBattery())
            total += st.ves->battery().energyWh();
    }
    return total;
}

void
Ecovisor::ensureContainerSeries(const cop::Container &c,
                                std::int32_t slot)
{
    cop::SlotSeriesCache &cache = cluster_->seriesCache(slot);
    const std::uint32_t generation = cluster_->slotGeneration(slot);
    if (cache.generation == generation && cache.power >= 0)
        return;
    // First sight of this container (or of this slot incarnation):
    // the one place the per-container string key is ever built —
    // once per container lifetime, not per tick.
    const std::string tag = std::to_string(c.id);
    cache.power = db_.intern("container_power_w", tag);
    cache.carbon = db_.intern("container_carbon_g", tag);
    cache.generation = generation;
    reserveExpected(static_cast<ts::SeriesId>(cache.power));
    reserveExpected(static_cast<ts::SeriesId>(cache.carbon));
}

void
Ecovisor::recordApp(const AppState &st, TimeS start_s)
{
    const auto &s = st.ves->lastSettlement();
    db_.append(st.series.power, start_s, s.demand_w);
    db_.append(st.series.grid, start_s, s.grid_w);
    db_.append(st.series.solar_used, start_s, s.solar_used_w);
    db_.append(st.series.batt_discharge, start_s, s.batt_discharge_w);
    db_.append(st.series.batt_charge, start_s,
               s.batt_charge_solar_w + s.batt_charge_grid_w);
    db_.append(st.series.carbon, start_s, s.carbon_g);
    if (st.ves->hasBattery())
        db_.append(st.series.soc, start_s, st.ves->battery().soc());
    db_.append(st.series.containers, start_s,
               static_cast<double>(
                   cluster_->appContainerCount(st.cop_app)));

    // Per-container power and attributed carbon: the container's
    // carbon share is proportional to its share of app demand
    // (PowerAPI-style attribution backing Table 2's
    // get_container_energy/get_container_carbon). Series ids come
    // from the slot cache the resolve pass filled; everything here is
    // app-local, which is what makes this function shardable.
    cluster_->forEachAppContainerSlot(
        st.cop_app, [&](const cop::Container &c, std::int32_t slot) {
            const cop::SlotSeriesCache &cache =
                cluster_->seriesCache(slot);
            double p_w = cluster_->containerPowerW(c);
            db_.append(cache.power, start_s, p_w);
            double share = s.demand_w > 1e-12 ? p_w / s.demand_w : 0.0;
            db_.append(cache.carbon, start_s, s.carbon_g * share);
        });
}

void
Ecovisor::recordTelemetry(TimeS start_s)
{
    // Only called from settleTick, which built settle_order_ (the
    // canonical sorted-by-name app order) earlier this tick.
    if (options_.telemetry_via_strings) {
        recordTelemetryStrings(start_s);
        return;
    }

    // Globals are cross-app state: always sequential, before the
    // shards start.
    db_.append(s_grid_carbon_, start_s, phys_->gridCarbonAt(start_s));
    db_.append(s_solar_w_, start_s, phys_->solarPowerAt(start_s));
    db_.append(s_cluster_power_, start_s, cluster_->totalPowerW());

    // Sequential resolve pass: intern series for any container that
    // appeared (or whose slot was recycled) since its last recorded
    // tick. Interning mutates the shared store, so it must finish
    // before the shards run; in steady state this pass is a
    // generation compare per live container and nothing else.
    for (AppState *stp : settle_order_)
        cluster_->forEachAppContainerSlot(
            stp->cop_app, [&](const cop::Container &c,
                              std::int32_t slot) {
                ensureContainerSeries(c, slot);
            });

    // Per-app appends, sharded exactly like settlement: each app's
    // series set is disjoint (per-app series plus its own containers'
    // series), every series takes exactly one append per tick, and
    // ticks are sequential — so append order within every series is
    // independent of the shard count and results are bit-identical
    // at any ECOV_THREADS value.
    runSharded([&](AppState &st) { recordApp(st, start_s); });
}

void
Ecovisor::recordTelemetryStrings(TimeS start_s)
{
    db_.write("grid_carbon", "", start_s, phys_->gridCarbonAt(start_s));
    db_.write("solar_w", "", start_s, phys_->solarPowerAt(start_s));
    db_.write("cluster_power_w", "", start_s, cluster_->totalPowerW());

    for (const auto &kv : index_) {
        const AppState &st = apps_[static_cast<std::size_t>(kv.second)];
        const auto &s = st.ves->lastSettlement();
        const std::string &app = st.name;
        db_.write("app_power_w", app, start_s, s.demand_w);
        db_.write("app_grid_w", app, start_s, s.grid_w);
        db_.write("app_solar_used_w", app, start_s, s.solar_used_w);
        db_.write("app_batt_discharge_w", app, start_s,
                  s.batt_discharge_w);
        db_.write("app_batt_charge_w", app, start_s,
                  s.batt_charge_solar_w + s.batt_charge_grid_w);
        db_.write("app_carbon_g", app, start_s, s.carbon_g);
        if (st.ves->hasBattery())
            db_.write("app_batt_soc", app, start_s,
                      st.ves->battery().soc());
        db_.write("app_containers", app, start_s,
                  static_cast<double>(
                      cluster_->appContainerCount(st.cop_app)));

        cluster_->forEachAppContainer(
            st.cop_app, [&](const cop::Container &c) {
                double p_w = cluster_->containerPowerW(c.id);
                db_.write("container_power_w", std::to_string(c.id),
                          start_s, p_w);
                double share =
                    s.demand_w > 1e-12 ? p_w / s.demand_w : 0.0;
                db_.write("container_carbon_g", std::to_string(c.id),
                          start_s, s.carbon_g * share);
            });
    }
}

} // namespace ecov::core
