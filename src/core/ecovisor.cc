#include "core/ecovisor.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace ecov::core {

Ecovisor::Ecovisor(cop::Cluster *cluster,
                   energy::PhysicalEnergySystem *phys,
                   EcovisorOptions options)
    : cluster_(cluster), phys_(phys), options_(options)
{
    if (!cluster_)
        fatal("Ecovisor: null cluster");
    if (!phys_)
        fatal("Ecovisor: null physical energy system");
}

void
Ecovisor::addApp(const std::string &app, const AppShareConfig &share)
{
    if (app.empty())
        fatal("Ecovisor::addApp: empty app name");
    if (apps_.count(app))
        fatal("Ecovisor::addApp: duplicate app '" + app + "'");

    // Validate aggregate shares against the physical system (§3.3).
    double solar_total = share.solar_fraction;
    double cap_total = share.battery ? share.battery->capacity_wh : 0.0;
    double charge_total = share.battery ? share.battery->max_charge_w : 0.0;
    double discharge_total =
        share.battery ? share.battery->max_discharge_w : 0.0;
    for (const auto &kv : apps_) {
        const auto &s = kv.second.ves->share();
        solar_total += s.solar_fraction;
        if (s.battery) {
            cap_total += s.battery->capacity_wh;
            charge_total += s.battery->max_charge_w;
            discharge_total += s.battery->max_discharge_w;
        }
    }
    if (solar_total > 1.0 + 1e-9)
        fatal("Ecovisor::addApp: solar fractions exceed 100%");
    if (share.solar_fraction > 0.0 && !phys_->hasSolar())
        fatal("Ecovisor::addApp: solar share without a solar array");
    if (share.battery) {
        if (!phys_->hasBattery())
            fatal("Ecovisor::addApp: battery share without a battery");
        const auto &pb = phys_->battery().config();
        if (cap_total > pb.capacity_wh + 1e-9)
            fatal("Ecovisor::addApp: battery capacity oversubscribed");
        if (charge_total > pb.max_charge_w + 1e-9)
            fatal("Ecovisor::addApp: battery charge rate oversubscribed");
        if (discharge_total > pb.max_discharge_w + 1e-9)
            fatal("Ecovisor::addApp: battery discharge oversubscribed");
    }

    AppState st;
    st.ves = std::make_unique<VirtualEnergySystem>(app, share);
    apps_.emplace(app, std::move(st));
}

bool
Ecovisor::hasApp(const std::string &app) const
{
    return apps_.count(app) > 0;
}

std::vector<std::string>
Ecovisor::appNames() const
{
    std::vector<std::string> out;
    out.reserve(apps_.size());
    for (const auto &kv : apps_)
        out.push_back(kv.first);
    return out;
}

Ecovisor::AppState &
Ecovisor::appState(const std::string &app)
{
    auto it = apps_.find(app);
    if (it == apps_.end())
        fatal("Ecovisor: unknown app '" + app + "'");
    return it->second;
}

const Ecovisor::AppState &
Ecovisor::appState(const std::string &app) const
{
    auto it = apps_.find(app);
    if (it == apps_.end())
        fatal("Ecovisor: unknown app '" + app + "'");
    return it->second;
}

void
Ecovisor::setContainerPowercap(cop::ContainerId id, double cap_w)
{
    if (!cluster_->exists(id))
        fatal("Ecovisor::setContainerPowercap: unknown container");
    if (cap_w < 0.0)
        fatal("Ecovisor::setContainerPowercap: negative cap");
    if (std::isinf(cap_w)) {
        powercaps_w_.erase(id);
        cluster_->setUtilizationCap(id, 1.0);
        return;
    }
    powercaps_w_[id] = cap_w;
    cluster_->setUtilizationCap(
        id, cluster_->utilizationCapForPower(id, cap_w));
}

void
Ecovisor::setBatteryChargeRate(const std::string &app, double rate_w)
{
    appState(app).ves->setChargeRateW(rate_w);
}

void
Ecovisor::setBatteryMaxDischarge(const std::string &app, double rate_w)
{
    appState(app).ves->setMaxDischargeW(rate_w);
}

TimeS
Ecovisor::currentTime() const
{
    // During a tick, dispatchTickCallbacks()/settleTick() record the
    // tick's start; between runs fall back to the tick after the last
    // settlement (signals are piecewise constant per tick).
    return std::max({now_hint_s_, last_settled_s_ + last_dt_s_,
                     TimeS{0}});
}

double
Ecovisor::getSolarPower(const std::string &app) const
{
    const auto &st = appState(app);
    return st.ves->share().solar_fraction *
           phys_->solarPowerAt(currentTime());
}

double
Ecovisor::getGridPower(const std::string &app) const
{
    return appState(app).ves->lastSettlement().grid_w;
}

double
Ecovisor::getGridCarbon() const
{
    return phys_->gridCarbonAt(currentTime());
}

double
Ecovisor::getBatteryDischargeRate(const std::string &app) const
{
    return appState(app).ves->lastSettlement().batt_discharge_w;
}

double
Ecovisor::getBatteryChargeLevel(const std::string &app) const
{
    const auto &st = appState(app);
    return st.ves->hasBattery() ? st.ves->battery().energyWh() : 0.0;
}

double
Ecovisor::getContainerPowercap(cop::ContainerId id) const
{
    auto it = powercaps_w_.find(id);
    return it == powercaps_w_.end() ? kUnlimitedW : it->second;
}

double
Ecovisor::getContainerPower(cop::ContainerId id) const
{
    return cluster_->containerPowerW(id);
}

void
Ecovisor::registerTickCallback(const std::string &app, TickCallback cb)
{
    if (!cb)
        fatal("Ecovisor::registerTickCallback: null callback");
    appState(app).callbacks.push_back(std::move(cb));
}

void
Ecovisor::attach(sim::Simulation &simulation)
{
    // Clock hint first: getters called from any later phase of this
    // tick (including policies registered directly with the
    // simulation) evaluate signals at the tick's start time.
    simulation.addListener(
        [this](TimeS start_s, TimeS) { now_hint_s_ = start_s; },
        sim::TickPhase::Environment, "ecovisor-clock");
    simulation.addListener(
        [this](TimeS start_s, TimeS dt_s) {
            dispatchTickCallbacks(start_s, dt_s);
        },
        sim::TickPhase::Policy, "ecovisor-upcalls");
    simulation.addListener(
        [this](TimeS start_s, TimeS dt_s) { settleTick(start_s, dt_s); },
        sim::TickPhase::Accounting, "ecovisor-settle");
}

void
Ecovisor::dispatchTickCallbacks(TimeS start_s, TimeS dt_s)
{
    now_hint_s_ = start_s;
    for (auto &kv : apps_) {
        for (auto &cb : kv.second.callbacks)
            cb(start_s, dt_s);
    }
}

void
Ecovisor::applyPowercaps()
{
    for (auto it = powercaps_w_.begin(); it != powercaps_w_.end();) {
        if (!cluster_->exists(it->first)) {
            it = powercaps_w_.erase(it);
            continue;
        }
        cluster_->setUtilizationCap(
            it->first,
            cluster_->utilizationCapForPower(it->first, it->second));
        ++it;
    }
}

void
Ecovisor::settleTick(TimeS start_s, TimeS dt_s)
{
    if (dt_s <= 0)
        fatal("Ecovisor::settleTick: non-positive tick");
    now_hint_s_ = start_s;

    // Re-apply watt caps: allocations may have changed this tick.
    applyPowercaps();

    const double solar_w = phys_->solarPowerAt(start_s);
    const double intensity = phys_->gridCarbonAt(start_s);

    double owned_solar_fraction = 0.0;
    double total_grid_w = 0.0;
    double total_curtailed_w = 0.0;

    for (auto &kv : apps_) {
        auto &ves = *kv.second.ves;
        double app_solar_w = ves.share().solar_fraction * solar_w;
        owned_solar_fraction += ves.share().solar_fraction;
        double demand_w = cluster_->appPowerW(kv.first);
        const TickSettlement &s =
            ves.settle(demand_w, app_solar_w, intensity, start_s, dt_s);
        total_grid_w += s.grid_w;
        total_curtailed_w += s.curtailed_w;
    }

    // Solar not owned by any app is excess by definition.
    total_curtailed_w += (1.0 - owned_solar_fraction) * solar_w;

    // Excess-solar policy (§3.1: reclaim & redistribute, net meter,
    // or curtail).
    if (total_curtailed_w > 1e-12) {
        if (options_.excess_solar == ExcessSolarPolicy::Redistribute) {
            for (auto &kv : apps_) {
                if (total_curtailed_w <= 1e-12)
                    break;
                double took = kv.second.ves->absorbRedistributedSolar(
                    total_curtailed_w, dt_s);
                total_curtailed_w -= took;
            }
            curtailed_wh_ += energyWh(total_curtailed_w, dt_s);
        } else if (options_.excess_solar == ExcessSolarPolicy::NetMeter) {
            net_metered_wh_ += energyWh(total_curtailed_w, dt_s);
        } else {
            curtailed_wh_ += energyWh(total_curtailed_w, dt_s);
        }
    }

    // Meter the aggregate grid draw (global energy + carbon books).
    if (phys_->hasGrid() && total_grid_w > 0.0)
        phys_->grid()->draw(total_grid_w, start_s, dt_s);

    // Mirror the aggregate virtual battery state into the physical
    // bank so its SOC stays consistent with the sum of shares.
    if (phys_->hasBattery())
        phys_->battery().setEnergyWh(aggregateBatteryWh());

    last_settled_s_ = start_s;
    last_dt_s_ = dt_s;

    if (options_.record_telemetry)
        recordTelemetry(start_s);
}

double
Ecovisor::aggregateBatteryWh() const
{
    double total = 0.0;
    for (const auto &kv : apps_) {
        if (kv.second.ves->hasBattery())
            total += kv.second.ves->battery().energyWh();
    }
    return total;
}

void
Ecovisor::recordTelemetry(TimeS start_s)
{
    db_.write("grid_carbon", "", start_s, phys_->gridCarbonAt(start_s));
    db_.write("solar_w", "", start_s, phys_->solarPowerAt(start_s));
    db_.write("cluster_power_w", "", start_s, cluster_->totalPowerW());

    for (const auto &kv : apps_) {
        const auto &s = kv.second.ves->lastSettlement();
        const std::string &app = kv.first;
        db_.write("app_power_w", app, start_s, s.demand_w);
        db_.write("app_grid_w", app, start_s, s.grid_w);
        db_.write("app_solar_used_w", app, start_s, s.solar_used_w);
        db_.write("app_batt_discharge_w", app, start_s,
                  s.batt_discharge_w);
        db_.write("app_batt_charge_w", app, start_s,
                  s.batt_charge_solar_w + s.batt_charge_grid_w);
        db_.write("app_carbon_g", app, start_s, s.carbon_g);
        if (kv.second.ves->hasBattery())
            db_.write("app_batt_soc", app, start_s,
                      kv.second.ves->battery().soc());
        db_.write("app_containers", app, start_s,
                  static_cast<double>(
                      cluster_->appContainers(app).size()));

        // Per-container power and attributed carbon: the container's
        // carbon share is proportional to its share of app demand
        // (PowerAPI-style attribution backing Table 2's
        // get_container_energy/get_container_carbon).
        for (cop::ContainerId id : cluster_->appContainers(app)) {
            double p_w = cluster_->containerPowerW(id);
            db_.write("container_power_w", std::to_string(id),
                      start_s, p_w);
            double share = s.demand_w > 1e-12 ? p_w / s.demand_w : 0.0;
            db_.write("container_carbon_g", std::to_string(id),
                      start_s, s.carbon_g * share);
        }
    }
}

const VirtualEnergySystem &
Ecovisor::ves(const std::string &app) const
{
    return *appState(app).ves;
}

} // namespace ecov::core
