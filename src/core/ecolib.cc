#include "core/ecolib.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace ecov::core {

EcoLib::EcoLib(Ecovisor *ecovisor, std::string app)
    : eco_(ecovisor), app_(std::move(app))
{
    if (!eco_)
        fatal("EcoLib: null ecovisor");
    // Resolve the name exactly once; every later query is
    // handle-addressed.
    auto resolved = eco_->findApp(app_);
    if (!resolved.ok())
        fatal("EcoLib: unknown app '" + app_ + "'");
    handle_ = resolved.value();
    cop_app_ = eco_->copAppIndex(handle_);
    // Resolve the interval-query series once too: every per-tick
    // query below is then an indexed read with a cursor hint.
    power_series_ =
        eco_->appSeriesId(handle_, api::AppMetric::PowerW).value();
    carbon_series_ =
        eco_->appSeriesId(handle_, api::AppMetric::CarbonG).value();
    eco_->registerTickCallback(
              handle_,
              [this](TimeS start_s, TimeS dt_s) { onTick(start_s, dt_s); })
        .orFatal();
}

double
EcoLib::getAppPower() const
{
    return eco_->ves(handle_)->lastSettlement().demand_w;
}

double
EcoLib::getAppEnergyWh(TimeS t1, TimeS t2) const
{
    return eco_->db().series(power_series_).integrateWh(
        t1, t2, &energy_cursor_);
}

double
EcoLib::getAppCarbonG(TimeS t1, TimeS t2) const
{
    return eco_->db().series(carbon_series_).sumRange(t1, t2,
                                                      &carbon_cursor_);
}

double
EcoLib::getAppCarbonG() const
{
    return eco_->ves(handle_)->totalCarbonG();
}

EcoLib::ContainerSeries *
EcoLib::containerSeries(cop::ContainerId id) const
{
    auto it = container_series_.find(id);
    if (it != container_series_.end())
        return &it->second;
    // First query for this container: resolve the string keys once.
    // Queries never intern (the const contract: an unknown series
    // reads as empty), so an unrecorded container is simply retried
    // on the next call rather than cached as absent.
    const std::string tag = std::to_string(id);
    ContainerSeries cs;
    cs.power = eco_->db().findSeries("container_power_w", tag);
    cs.carbon = eco_->db().findSeries("container_carbon_g", tag);
    if (cs.power == ts::kInvalidSeries ||
        cs.carbon == ts::kInvalidSeries)
        return nullptr;
    return &container_series_.emplace(id, cs).first->second;
}

double
EcoLib::getContainerEnergyWh(cop::ContainerId id, TimeS t1, TimeS t2) const
{
    ContainerSeries *cs = containerSeries(id);
    if (!cs)
        return 0.0;
    return eco_->db().series(cs->power).integrateWh(t1, t2,
                                                    &cs->power_cursor);
}

double
EcoLib::getContainerCarbonG(cop::ContainerId id, TimeS t1, TimeS t2) const
{
    ContainerSeries *cs = containerSeries(id);
    if (!cs)
        return 0.0;
    return eco_->db().series(cs->carbon).sumRange(t1, t2,
                                                  &cs->carbon_cursor);
}

void
EcoLib::setCarbonRate(double g_per_s)
{
    if (g_per_s < 0.0)
        fatal("EcoLib::setCarbonRate: negative rate");
    rate_g_per_s_ = g_per_s;
}

void
EcoLib::clearCarbonRate()
{
    rate_g_per_s_.reset();
    // Allocation-free walk; uncapping mutates caps only, never the
    // container list itself, so iterating while setting is safe.
    eco_->cluster().forEachAppContainer(
        cop_app_, [&](const cop::Container &c) {
            eco_->setContainerPowercap(c.id, kUnlimitedW);
        });
}

void
EcoLib::setContainerCarbonRate(cop::ContainerId id, double g_per_s)
{
    if (g_per_s < 0.0)
        fatal("EcoLib::setContainerCarbonRate: negative rate");
    const cop::Container *c =
        eco_->cluster().tryContainer(id).valueOr(nullptr);
    if (!c || c->app != cop_app_)
        fatal("EcoLib::setContainerCarbonRate: container not owned by "
              "app '" + app_ + "'");
    container_rates_g_per_s_[id] = g_per_s;
}

void
EcoLib::clearContainerCarbonRate(cop::ContainerId id)
{
    if (container_rates_g_per_s_.erase(id) > 0 &&
        eco_->cluster().exists(id))
        eco_->setContainerPowercap(id, kUnlimitedW);
}

void
EcoLib::setCarbonBudget(double budget_g)
{
    if (budget_g < 0.0)
        fatal("EcoLib::setCarbonBudget: negative budget");
    budget_g_ = budget_g;
    spent_g_at_budget_set_ = eco_->ves(handle_)->totalCarbonG();
}

double
EcoLib::carbonBudgetRemaining() const
{
    if (!budget_g_)
        fatal("EcoLib::carbonBudgetRemaining: no budget set");
    double spent =
        eco_->ves(handle_)->totalCarbonG() - spent_g_at_budget_set_;
    return *budget_g_ - spent;
}

void
EcoLib::notifySolarChange(ChangeNotify cb, double threshold)
{
    if (!cb)
        fatal("EcoLib::notifySolarChange: null callback");
    solar_watch_.push_back({std::move(cb), threshold});
}

void
EcoLib::notifyCarbonChange(ChangeNotify cb, double threshold)
{
    if (!cb)
        fatal("EcoLib::notifyCarbonChange: null callback");
    carbon_watch_.push_back({std::move(cb), threshold});
}

void
EcoLib::notifyBatteryFull(Notify cb)
{
    if (!cb)
        fatal("EcoLib::notifyBatteryFull: null callback");
    full_watch_.push_back(std::move(cb));
}

void
EcoLib::notifyBatteryEmpty(Notify cb)
{
    if (!cb)
        fatal("EcoLib::notifyBatteryEmpty: null callback");
    empty_watch_.push_back(std::move(cb));
}

void
EcoLib::onTick(TimeS start_s, TimeS dt_s)
{
    if (rate_g_per_s_)
        enforceCarbonRate(start_s, dt_s);
    enforceContainerCarbonRates();
    fireNotifications();
}

void
EcoLib::enforceContainerCarbonRates()
{
    if (container_rates_g_per_s_.empty())
        return;
    double intensity = eco_->getGridCarbon();
    for (auto it = container_rates_g_per_s_.begin();
         it != container_rates_g_per_s_.end();) {
        if (!eco_->cluster().exists(it->first)) {
            it = container_rates_g_per_s_.erase(it);
            continue;
        }
        double cap_w = intensity > 1e-12
            ? it->second * 3600.0 * 1000.0 / intensity
            : kUnlimitedW;
        eco_->setContainerPowercap(it->first, cap_w);
        ++it;
    }
}

void
EcoLib::enforceCarbonRate(TimeS start_s, TimeS dt_s)
{
    (void)start_s;
    (void)dt_s;
    const int count = eco_->cluster().appContainerCount(cop_app_);
    if (count == 0)
        return;

    // Grid power that keeps emissions at the rate limit:
    //   rate [g/s] = grid_w * intensity [g/kWh] / (1000 * 3600)
    double intensity = eco_->getGridCarbon();
    double allowed_grid_w = intensity > 1e-12
        ? *rate_g_per_s_ * 3600.0 * 1000.0 / intensity
        : kUnlimitedW;

    // Zero-carbon supply is free: virtual solar plus whatever the
    // battery is permitted to discharge.
    const auto &ves = *eco_->ves(handle_);
    double zero_carbon_w = eco_->getSolarPower(handle_).value();
    if (ves.hasBattery()) {
        double batt_w = std::min(ves.maxDischargeW(),
                                 ves.battery().config().max_discharge_w);
        if (ves.battery().empty())
            batt_w = 0.0;
        zero_carbon_w += batt_w;
    }

    double budget_w = zero_carbon_w + allowed_grid_w;
    double per_container_w = budget_w / static_cast<double>(count);
    eco_->cluster().forEachAppContainer(
        cop_app_, [&](const cop::Container &c) {
            eco_->setContainerPowercap(c.id, per_container_w);
        });
}

void
EcoLib::fireNotifications()
{
    // One batched snapshot serves every watch below coherently.
    const api::EnergySnapshot snap =
        eco_->getEnergySnapshot(handle_).value();
    double solar = snap.solar_w;
    if (prev_solar_w_ >= 0.0) {
        double base = std::max(prev_solar_w_, 1e-9);
        double rel = std::fabs(solar - prev_solar_w_) / base;
        for (auto &w : solar_watch_) {
            if (rel > w.threshold)
                w.cb(prev_solar_w_, solar);
        }
    }
    prev_solar_w_ = solar;

    double carbon = snap.grid_carbon_g_per_kwh;
    if (prev_carbon_ >= 0.0) {
        double base = std::max(prev_carbon_, 1e-9);
        double rel = std::fabs(carbon - prev_carbon_) / base;
        for (auto &w : carbon_watch_) {
            if (rel > w.threshold)
                w.cb(prev_carbon_, carbon);
        }
    }
    prev_carbon_ = carbon;

    const auto &ves = *eco_->ves(handle_);
    if (ves.hasBattery()) {
        bool full = ves.battery().full();
        bool empty = ves.battery().empty();
        if (full && !prev_full_) {
            for (auto &cb : full_watch_)
                cb();
        }
        if (empty && !prev_empty_) {
            for (auto &cb : empty_watch_)
                cb();
        }
        prev_full_ = full;
        prev_empty_ = empty;
    }
}

} // namespace ecov::core
