/**
 * @file
 * Unit conventions and conversion helpers used across the ecovisor.
 *
 * The library standardizes on one unit per physical quantity to avoid
 * silent unit-mix bugs:
 *  - power:             watts            (double, suffix `_w`)
 *  - energy:            watt-hours       (double, suffix `_wh`)
 *  - carbon mass:       grams CO2-eq     (double, suffix `_g`)
 *  - carbon intensity:  grams per kWh    (double, suffix `_g_per_kwh`)
 *  - time:              seconds          (std::int64_t, suffix `_s`)
 *
 * The paper's API (Table 1) talks in kW / kWh / gCO2 per kW; the public
 * accessors convert at the boundary using the helpers below.
 */

#ifndef ECOV_UTIL_UNITS_H
#define ECOV_UTIL_UNITS_H

#include <cmath>
#include <cstdint>

namespace ecov {

/** Simulation time in whole seconds since the start of a run. */
using TimeS = std::int64_t;

/** Seconds per hour, used by energy integration. */
inline constexpr double kSecondsPerHour = 3600.0;

/** Watt-hours per kilowatt-hour. */
inline constexpr double kWhPerKwh = 1000.0;

/** Convert watts to kilowatts. */
constexpr double
wattsToKw(double watts)
{
    return watts / 1000.0;
}

/** Convert kilowatts to watts. */
constexpr double
kwToWatts(double kw)
{
    return kw * 1000.0;
}

/** Convert watt-hours to kilowatt-hours. */
constexpr double
whToKwh(double wh)
{
    return wh / kWhPerKwh;
}

/** Convert kilowatt-hours to watt-hours. */
constexpr double
kwhToWh(double kwh)
{
    return kwh * kWhPerKwh;
}

/**
 * Energy (Wh) from holding a constant power (W) for a duration (s).
 *
 * @param power_w constant power over the interval, in watts
 * @param duration_s interval length in seconds
 * @return energy in watt-hours
 */
constexpr double
energyWh(double power_w, TimeS duration_s)
{
    return power_w * static_cast<double>(duration_s) / kSecondsPerHour;
}

/**
 * Average power (W) implied by an energy amount over a duration.
 *
 * @param energy_wh energy in watt-hours
 * @param duration_s interval length in seconds (must be > 0)
 * @return average power in watts
 */
constexpr double
powerW(double energy_wh, TimeS duration_s)
{
    return energy_wh * kSecondsPerHour / static_cast<double>(duration_s);
}

/**
 * Carbon mass (g CO2-eq) emitted by consuming energy at a given
 * grid carbon intensity.
 *
 * @param energy_wh energy drawn from the grid, in watt-hours
 * @param intensity_g_per_kwh grid carbon intensity in gCO2/kWh
 * @return grams of CO2-equivalent
 */
constexpr double
carbonGrams(double energy_wh, double intensity_g_per_kwh)
{
    return whToKwh(energy_wh) * intensity_g_per_kwh;
}

/** Clamp a value into [lo, hi]. */
constexpr double
clamp(double v, double lo, double hi)
{
    return v < lo ? lo : (v > hi ? hi : v);
}

/** True when two doubles are within an absolute epsilon. */
inline bool
nearlyEqual(double a, double b, double eps = 1e-9)
{
    return std::fabs(a - b) <= eps;
}

} // namespace ecov

#endif // ECOV_UTIL_UNITS_H
