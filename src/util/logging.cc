#include "util/logging.h"

#include <cstdio>
#include <cstdlib>

namespace ecov {

namespace {
bool g_verbose = false;
} // namespace

void
setVerbose(bool verbose)
{
    g_verbose = verbose;
}

bool
verbose()
{
    return g_verbose;
}

void
inform(const std::string &msg)
{
    if (g_verbose)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
fatal(const std::string &msg)
{
    throw FatalError(msg);
}

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

} // namespace ecov
