/**
 * @file
 * Deterministic random number generation for reproducible simulations.
 *
 * All stochastic behaviour in the ecovisor flows through Rng so that a
 * run is a pure function of (configuration, seed). Never use wall-clock
 * or unseeded generators inside the library.
 */

#ifndef ECOV_UTIL_RNG_H
#define ECOV_UTIL_RNG_H

#include <cstdint>
#include <random>

namespace ecov {

/**
 * Seeded pseudo-random source wrapping std::mt19937_64.
 *
 * Provides the handful of distributions the simulator needs. Cheap to
 * construct; pass by reference where shared streams are required.
 */
class Rng
{
  public:
    /** Construct with an explicit seed (deterministic by design). */
    explicit Rng(std::uint64_t seed) : engine_(seed) {}

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        std::uniform_real_distribution<double> d(lo, hi);
        return d(engine_);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    uniformInt(std::int64_t lo, std::int64_t hi)
    {
        std::uniform_int_distribution<std::int64_t> d(lo, hi);
        return d(engine_);
    }

    /** Gaussian sample with the given mean and standard deviation. */
    double
    gaussian(double mean, double stddev)
    {
        std::normal_distribution<double> d(mean, stddev);
        return d(engine_);
    }

    /** Exponential sample with the given rate (lambda). */
    double
    exponential(double rate)
    {
        std::exponential_distribution<double> d(rate);
        return d(engine_);
    }

    /** Bernoulli trial: true with probability p. */
    bool
    bernoulli(double p)
    {
        std::bernoulli_distribution d(p);
        return d(engine_);
    }

    /** Derive an independent child stream (for per-component seeding). */
    Rng
    fork()
    {
        return Rng(engine_());
    }

    /** Access the underlying engine (for std::shuffle etc.). */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace ecov

#endif // ECOV_UTIL_RNG_H
