#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace ecov {

void
RunningStats::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double
RunningStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStats::reset()
{
    count_ = 0;
    mean_ = m2_ = min_ = max_ = sum_ = 0.0;
}

double
SampleSet::mean() const
{
    if (samples_.empty())
        return 0.0;
    double s = 0.0;
    for (double x : samples_)
        s += x;
    return s / static_cast<double>(samples_.size());
}

double
SampleSet::percentile(double p) const
{
    return percentileOf(samples_, p);
}

double
percentileOf(std::vector<double> values, double p)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    if (p <= 0.0)
        return values.front();
    if (p >= 100.0)
        return values.back();
    double rank = p / 100.0 * static_cast<double>(values.size() - 1);
    auto lo = static_cast<std::size_t>(rank);
    double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= values.size())
        return values.back();
    return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

} // namespace ecov
