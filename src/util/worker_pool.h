/**
 * @file
 * A small persistent worker pool for sharded per-tick work.
 *
 * The ecovisor's settlement loop is embarrassingly parallel across
 * applications (per-app state is index-addressed and disjoint), but a
 * simulation settles tens of thousands of ticks in a tight loop —
 * spawning threads per tick would dwarf the work. This pool keeps its
 * threads parked on a condition variable between run() calls.
 *
 * run(tasks, fn) executes fn(0..tasks-1) across the pool (the calling
 * thread participates) and returns when every task has finished —
 * callers sequence any order-sensitive reduction *after* the join, so
 * parallelism never changes floating-point accumulation order. Tasks
 * are handed out through a shared atomic counter; an exception thrown
 * by any task is captured and rethrown on the calling thread after
 * the batch drains.
 */

#ifndef ECOV_UTIL_WORKER_POOL_H
#define ECOV_UTIL_WORKER_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ecov {

class WorkerPool
{
  public:
    /**
     * @param threads total parallelism (>= 1). The pool spawns
     *        threads-1 workers; the thread calling run() is the
     *        remaining one.
     */
    explicit WorkerPool(int threads);

    /** Joins all workers (outstanding run() must have returned). */
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Total parallelism (worker threads + the caller). */
    int threads() const { return static_cast<int>(workers_.size()) + 1; }

    /**
     * Run fn(i) for every i in [0, tasks), distributing indices over
     * the pool; blocks until all complete. Not reentrant: fn must not
     * call run() on the same pool.
     */
    void run(int tasks, const std::function<void(int)> &fn);

  private:
    void workerMain();
    void drain(const std::function<void(int)> &fn, int tasks);

    std::mutex mu_;
    std::condition_variable start_cv_;
    std::condition_variable done_cv_;
    const std::function<void(int)> *fn_ = nullptr; ///< current batch
    int tasks_ = 0;
    std::atomic<int> next_{0};   ///< next task index to claim
    int active_ = 0;             ///< workers still in the batch
    std::uint64_t epoch_ = 0;    ///< batch sequence number
    bool stop_ = false;
    std::exception_ptr error_;   ///< first failure in the batch
    std::vector<std::thread> workers_;
};

} // namespace ecov

#endif // ECOV_UTIL_WORKER_POOL_H
