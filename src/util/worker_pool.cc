#include "util/worker_pool.h"

#include "util/logging.h"

namespace ecov {

WorkerPool::WorkerPool(int threads)
{
    if (threads < 1)
        fatal("WorkerPool: thread count must be >= 1");
    workers_.reserve(static_cast<std::size_t>(threads - 1));
    for (int i = 0; i < threads - 1; ++i)
        workers_.emplace_back([this] { workerMain(); });
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    start_cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
WorkerPool::drain(const std::function<void(int)> &fn, int tasks)
{
    for (;;) {
        const int i = next_.fetch_add(1, std::memory_order_relaxed);
        if (i >= tasks)
            return;
        try {
            fn(i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(mu_);
            if (!error_)
                error_ = std::current_exception();
        }
    }
}

void
WorkerPool::workerMain()
{
    std::uint64_t seen_epoch = 0;
    for (;;) {
        const std::function<void(int)> *fn = nullptr;
        int tasks = 0;
        {
            std::unique_lock<std::mutex> lock(mu_);
            start_cv_.wait(lock, [&] {
                return stop_ || epoch_ != seen_epoch;
            });
            if (stop_)
                return;
            seen_epoch = epoch_;
            fn = fn_;
            tasks = tasks_;
        }
        drain(*fn, tasks);
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (--active_ == 0)
                done_cv_.notify_one();
        }
    }
}

void
WorkerPool::run(int tasks, const std::function<void(int)> &fn)
{
    if (tasks <= 0)
        return;
    {
        std::lock_guard<std::mutex> lock(mu_);
        fn_ = &fn;
        tasks_ = tasks;
        next_.store(0, std::memory_order_relaxed);
        active_ = static_cast<int>(workers_.size());
        error_ = nullptr;
        ++epoch_;
    }
    start_cv_.notify_all();

    drain(fn, tasks);

    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(mu_);
        done_cv_.wait(lock, [&] { return active_ == 0; });
        fn_ = nullptr;
        error = error_;
        error_ = nullptr;
    }
    if (error)
        std::rethrow_exception(error);
}

} // namespace ecov
