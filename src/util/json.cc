#include "util/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/logging.h"

namespace ecov {

// ---------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------

JsonWriter::JsonWriter(int indent) : indent_(indent) {}

std::string
JsonWriter::escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(static_cast<char>(c));
            }
        }
    }
    out.push_back('"');
    return out;
}

std::string
JsonWriter::formatDouble(double d)
{
    if (!std::isfinite(d))
        return "null";
    // Shortest round-trip form. to_chars never emits a leading '+' or
    // locale-dependent separators, so output is stable across hosts.
    char buf[32];
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, d);
    if (ec != std::errc())
        fatal("JsonWriter::formatDouble: to_chars failed");
    std::string s(buf, ptr);
    // JSON has no bare "1e+30"-style integers' ambiguity to worry
    // about, but "nan"/"inf" never reach here (guarded above).
    return s;
}

void
JsonWriter::comma()
{
    if (!stack_.empty() && has_items_.back())
        out_.push_back(',');
}

void
JsonWriter::indentLine()
{
    if (indent_ <= 0)
        return;
    out_.push_back('\n');
    out_.append(stack_.size() * static_cast<std::size_t>(indent_), ' ');
}

void
JsonWriter::preValue()
{
    if (stack_.empty()) {
        if (!out_.empty())
            fatal("JsonWriter: multiple top-level values");
        return;
    }
    if (stack_.back() == Frame::Object) {
        if (!key_pending_)
            fatal("JsonWriter: value inside object requires key()");
        key_pending_ = false;
    } else {
        comma();
        indentLine();
        has_items_.back() = true;
    }
}

void
JsonWriter::key(std::string_view k)
{
    if (stack_.empty() || stack_.back() != Frame::Object)
        fatal("JsonWriter: key() outside object");
    if (key_pending_)
        fatal("JsonWriter: key() with a key already pending");
    comma();
    indentLine();
    has_items_.back() = true;
    out_ += escape(k);
    out_.push_back(':');
    if (indent_ > 0)
        out_.push_back(' ');
    key_pending_ = true;
}

void
JsonWriter::beginObject()
{
    preValue();
    out_.push_back('{');
    stack_.push_back(Frame::Object);
    has_items_.push_back(false);
}

void
JsonWriter::endObject()
{
    if (stack_.empty() || stack_.back() != Frame::Object)
        fatal("JsonWriter: endObject() without beginObject()");
    if (key_pending_)
        fatal("JsonWriter: endObject() with dangling key");
    bool had = has_items_.back();
    stack_.pop_back();
    has_items_.pop_back();
    if (had)
        indentLine();
    out_.push_back('}');
}

void
JsonWriter::beginArray()
{
    preValue();
    out_.push_back('[');
    stack_.push_back(Frame::Array);
    has_items_.push_back(false);
}

void
JsonWriter::endArray()
{
    if (stack_.empty() || stack_.back() != Frame::Array)
        fatal("JsonWriter: endArray() without beginArray()");
    bool had = has_items_.back();
    stack_.pop_back();
    has_items_.pop_back();
    if (had)
        indentLine();
    out_.push_back(']');
}

void
JsonWriter::value(std::string_view s)
{
    preValue();
    out_ += escape(s);
}

void
JsonWriter::value(double d)
{
    preValue();
    out_ += formatDouble(d);
}

void
JsonWriter::value(std::int64_t i)
{
    preValue();
    out_ += std::to_string(i);
}

void
JsonWriter::value(std::uint64_t u)
{
    preValue();
    out_ += std::to_string(u);
}

void
JsonWriter::value(bool b)
{
    preValue();
    out_ += b ? "true" : "false";
}

void
JsonWriter::null()
{
    preValue();
    out_ += "null";
}

std::string
JsonWriter::str() const
{
    if (!stack_.empty())
        fatal("JsonWriter::str: unclosed container");
    return out_;
}

// ---------------------------------------------------------------------
// JsonValue parser
// ---------------------------------------------------------------------

/** Recursive-descent parser over a string_view. */
class JsonParser
{
  public:
    explicit JsonParser(std::string_view text) : text_(text) {}

    std::optional<JsonValue> run(std::string *error)
    {
        auto v = parseValue();
        if (v) {
            skipWs();
            if (pos_ != text_.size())
                fail("trailing characters after document");
        }
        if (!error_.empty()) {
            if (error)
                *error = error_ + " at offset " + std::to_string(pos_);
            return std::nullopt;
        }
        return v;
    }

  private:
    void fail(const std::string &msg)
    {
        if (error_.empty())
            error_ = msg;
    }

    void skipWs()
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
                ++pos_;
            else
                break;
        }
    }

    bool consume(char c)
    {
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    /** Read 4 hex digits of a \u escape into *code. */
    bool readHex4(unsigned *code)
    {
        if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return false;
        }
        unsigned value = 0;
        for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            value <<= 4;
            if (h >= '0' && h <= '9')
                value |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
                value |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
                value |= static_cast<unsigned>(h - 'A' + 10);
            else {
                fail("bad hex digit in \\u escape");
                return false;
            }
        }
        *code = value;
        return true;
    }

    /** Append one code point as UTF-8. */
    static void appendUtf8(std::string *out, unsigned code)
    {
        if (code < 0x80) {
            out->push_back(static_cast<char>(code));
        } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else if (code < 0x10000) {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(
                static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
            out->push_back(static_cast<char>(0xF0 | (code >> 18)));
            out->push_back(
                static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
            out->push_back(
                static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
    }

    bool literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) == word) {
            pos_ += word.size();
            return true;
        }
        return false;
    }

    std::optional<JsonValue> parseValue()
    {
        skipWs();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return std::nullopt;
        }
        // The parser recurses per nesting level; bound it so hostile
        // or corrupt input fails with an error instead of a stack
        // overflow. Reports nest ~4 deep.
        if (depth_ >= kMaxDepth) {
            fail("nesting depth exceeds limit");
            return std::nullopt;
        }
        char c = text_[pos_];
        JsonValue v;
        switch (c) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"': {
            auto s = parseString();
            if (!s)
                return std::nullopt;
            v.type_ = JsonValue::Type::String;
            v.string_ = std::move(*s);
            return v;
          }
          case 't':
            if (literal("true")) {
                v.type_ = JsonValue::Type::Bool;
                v.bool_ = true;
                return v;
            }
            break;
          case 'f':
            if (literal("false")) {
                v.type_ = JsonValue::Type::Bool;
                v.bool_ = false;
                return v;
            }
            break;
          case 'n':
            if (literal("null"))
                return v; // Null
            break;
          default:
            return parseNumber();
        }
        fail("unrecognized token");
        return std::nullopt;
    }

    std::optional<JsonValue> parseNumber()
    {
        std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if ((c >= '0' && c <= '9') || c == '.' || c == 'e' ||
                c == 'E' || c == '+' || c == '-')
                ++pos_;
            else
                break;
        }
        if (pos_ == start) {
            fail("expected number");
            return std::nullopt;
        }
        double d = 0.0;
        auto [ptr, ec] =
            std::from_chars(text_.data() + start, text_.data() + pos_, d);
        if (ec != std::errc() || ptr != text_.data() + pos_) {
            fail("malformed number");
            return std::nullopt;
        }
        JsonValue v;
        v.type_ = JsonValue::Type::Number;
        v.number_ = d;
        return v;
    }

    std::optional<std::string> parseString()
    {
        if (!consume('"')) {
            fail("expected string");
            return std::nullopt;
        }
        std::string out;
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    break;
                char e = text_[pos_++];
                switch (e) {
                  case '"':
                    out.push_back('"');
                    break;
                  case '\\':
                    out.push_back('\\');
                    break;
                  case '/':
                    out.push_back('/');
                    break;
                  case 'b':
                    out.push_back('\b');
                    break;
                  case 'f':
                    out.push_back('\f');
                    break;
                  case 'n':
                    out.push_back('\n');
                    break;
                  case 'r':
                    out.push_back('\r');
                    break;
                  case 't':
                    out.push_back('\t');
                    break;
                  case 'u': {
                    unsigned code = 0;
                    if (!readHex4(&code))
                        return std::nullopt;
                    // Combine surrogate pairs so the result is valid
                    // UTF-8; lone or mismatched surrogates are errors
                    // rather than silent CESU-8.
                    if (code >= 0xD800 && code <= 0xDBFF) {
                        if (pos_ + 2 > text_.size() ||
                            text_[pos_] != '\\' ||
                            text_[pos_ + 1] != 'u') {
                            fail("high surrogate without \\u pair");
                            return std::nullopt;
                        }
                        pos_ += 2;
                        unsigned low = 0;
                        if (!readHex4(&low))
                            return std::nullopt;
                        if (low < 0xDC00 || low > 0xDFFF) {
                            fail("invalid low surrogate");
                            return std::nullopt;
                        }
                        code = 0x10000 + ((code - 0xD800) << 10) +
                               (low - 0xDC00);
                    } else if (code >= 0xDC00 && code <= 0xDFFF) {
                        fail("lone low surrogate");
                        return std::nullopt;
                    }
                    appendUtf8(&out, code);
                    break;
                  }
                  default:
                    fail("unknown escape");
                    return std::nullopt;
                }
            } else {
                out.push_back(c);
            }
        }
        fail("unterminated string");
        return std::nullopt;
    }

    std::optional<JsonValue> parseArray()
    {
        consume('[');
        ++depth_;
        JsonValue v;
        v.type_ = JsonValue::Type::Array;
        v.array_ = std::make_shared<JsonValue::Array>();
        skipWs();
        if (consume(']')) {
            --depth_;
            return v;
        }
        while (true) {
            auto item = parseValue();
            if (!item)
                return std::nullopt;
            v.array_->push_back(std::move(*item));
            if (consume(','))
                continue;
            if (consume(']')) {
                --depth_;
                return v;
            }
            fail("expected ',' or ']' in array");
            return std::nullopt;
        }
    }

    std::optional<JsonValue> parseObject()
    {
        consume('{');
        ++depth_;
        JsonValue v;
        v.type_ = JsonValue::Type::Object;
        v.object_ = std::make_shared<JsonValue::Object>();
        skipWs();
        if (consume('}')) {
            --depth_;
            return v;
        }
        while (true) {
            skipWs();
            auto key = parseString();
            if (!key)
                return std::nullopt;
            if (!consume(':')) {
                fail("expected ':' after object key");
                return std::nullopt;
            }
            auto item = parseValue();
            if (!item)
                return std::nullopt;
            (*v.object_)[std::move(*key)] = std::move(*item);
            if (consume(','))
                continue;
            if (consume('}')) {
                --depth_;
                return v;
            }
            fail("expected ',' or '}' in object");
            return std::nullopt;
        }
    }

    static constexpr int kMaxDepth = 256;

    std::string_view text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
    std::string error_;
};

std::optional<JsonValue>
JsonValue::parse(std::string_view text, std::string *error)
{
    return JsonParser(text).run(error);
}

bool
JsonValue::asBool() const
{
    if (type_ != Type::Bool)
        fatal("JsonValue::asBool: not a bool");
    return bool_;
}

double
JsonValue::asDouble() const
{
    if (type_ != Type::Number)
        fatal("JsonValue::asDouble: not a number");
    return number_;
}

const std::string &
JsonValue::asString() const
{
    if (type_ != Type::String)
        fatal("JsonValue::asString: not a string");
    return string_;
}

const JsonValue::Array &
JsonValue::asArray() const
{
    if (type_ != Type::Array || !array_)
        fatal("JsonValue::asArray: not an array");
    return *array_;
}

const JsonValue::Object &
JsonValue::asObject() const
{
    if (type_ != Type::Object || !object_)
        fatal("JsonValue::asObject: not an object");
    return *object_;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (type_ != Type::Object || !object_)
        return nullptr;
    auto it = object_->find(key);
    return it == object_->end() ? nullptr : &it->second;
}

double
JsonValue::numberOr(const std::string &key, double fallback) const
{
    const JsonValue *v = find(key);
    return v && v->isNumber() ? v->number_ : fallback;
}

std::string
JsonValue::stringOr(const std::string &key,
                    const std::string &fallback) const
{
    const JsonValue *v = find(key);
    return v && v->isString() ? v->string_ : fallback;
}

} // namespace ecov
