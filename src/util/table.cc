#include "util/table.h"

#include <algorithm>
#include <cstdarg>

#include "util/logging.h"

namespace ecov {

TextTable::TextTable(std::vector<std::string> header)
    : columns_(header.size())
{
    rows_.push_back(std::move(header));
}

void
TextTable::addRow(std::vector<std::string> row)
{
    if (row.size() != columns_)
        fatal("TextTable row width mismatch");
    rows_.push_back(std::move(row));
}

std::string
TextTable::fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

void
TextTable::print(std::FILE *out) const
{
    std::vector<std::size_t> width(columns_, 0);
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < columns_; ++c)
            width[c] = std::max(width[c], row[c].size());

    for (std::size_t r = 0; r < rows_.size(); ++r) {
        for (std::size_t c = 0; c < columns_; ++c) {
            std::fprintf(out, "%-*s", static_cast<int>(width[c] + 2),
                         rows_[r][c].c_str());
        }
        std::fprintf(out, "\n");
        if (r == 0) {
            for (std::size_t c = 0; c < columns_; ++c)
                std::fprintf(out, "%s", std::string(width[c] + 2, '-').c_str());
            std::fprintf(out, "\n");
        }
    }
}

CsvWriter::CsvWriter(std::FILE *out, const std::vector<std::string> &header)
    : out_(out)
{
    for (std::size_t i = 0; i < header.size(); ++i)
        std::fprintf(out_, "%s%s", header[i].c_str(),
                     i + 1 == header.size() ? "\n" : ",");
}

void
CsvWriter::row(const std::vector<double> &values)
{
    for (std::size_t i = 0; i < values.size(); ++i)
        std::fprintf(out_, "%.6g%s", values[i],
                     i + 1 == values.size() ? "\n" : ",");
}

} // namespace ecov
