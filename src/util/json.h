/**
 * @file
 * Minimal JSON support for machine-readable reports.
 *
 * The ecobench runner emits perf reports as JSON so CI can archive
 * and diff them without any extra runtime (no Python, no third-party
 * JSON library). Two pieces:
 *
 *  - JsonWriter: a streaming writer with correct string escaping and
 *    stable numeric formatting (shortest round-trip form, so a value
 *    written and re-parsed compares bit-equal).
 *  - JsonValue: a small DOM parser for the same documents, used by
 *    `ecobench diff` to load baseline/current reports.
 *
 * This is not a general-purpose JSON library: no comments, no
 * trailing commas, UTF-8 passed through verbatim.
 */

#ifndef ECOV_UTIL_JSON_H
#define ECOV_UTIL_JSON_H

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ecov {

/**
 * Streaming JSON writer.
 *
 * Usage:
 *   JsonWriter w;
 *   w.beginObject();
 *   w.key("name"); w.value("fig04");
 *   w.key("metrics"); w.beginArray(); ... w.endArray();
 *   w.endObject();
 *   std::string doc = w.str();
 *
 * The writer tracks nesting and inserts commas/indentation; misuse
 * (e.g. a value with no pending key inside an object) is fatal, as
 * report-writing bugs should fail loudly in CI.
 */
class JsonWriter
{
  public:
    /** @param indent spaces per nesting level; 0 = compact one-line */
    explicit JsonWriter(int indent = 2);

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emit an object key; the next emission must be its value. */
    void key(std::string_view k);

    void value(std::string_view s);
    void value(const char *s) { value(std::string_view(s)); }
    /** Doubles use shortest round-trip form; NaN/Inf become null. */
    void value(double d);
    void value(std::int64_t i);
    void value(std::uint64_t u);
    void value(int i) { value(static_cast<std::int64_t>(i)); }
    void value(bool b);
    void null();

    /** The finished document. Fatal if containers are still open. */
    std::string str() const;

    /**
     * Escape `s` as a JSON string literal including the surrounding
     * quotes. Exposed for tests and ad-hoc formatting.
     */
    static std::string escape(std::string_view s);

    /** Format a double in shortest round-trip form ("null" for NaN/Inf). */
    static std::string formatDouble(double d);

  private:
    enum class Frame { Object, Array };

    void comma();
    void indentLine();
    void preValue();

    std::string out_;
    std::vector<Frame> stack_;
    std::vector<bool> has_items_;
    bool key_pending_ = false;
    int indent_;
};

/**
 * A parsed JSON document node.
 *
 * Objects preserve no duplicate keys (last wins) and iterate in
 * sorted key order; that is sufficient for report diffing, where key
 * order carries no meaning.
 */
class JsonValue
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    using Array = std::vector<JsonValue>;
    using Object = std::map<std::string, JsonValue>;

    JsonValue() = default;

    /**
     * Parse a complete document.
     *
     * @param text the document; trailing whitespace is permitted,
     *   trailing garbage is an error
     * @param error when non-null, receives a message on failure
     * @return the root value, or std::nullopt on malformed input
     */
    static std::optional<JsonValue> parse(std::string_view text,
                                          std::string *error = nullptr);

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** Value accessors; fatal on type mismatch. */
    bool asBool() const;
    double asDouble() const;
    const std::string &asString() const;
    const Array &asArray() const;
    const Object &asObject() const;

    /** Object lookup: nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /** Convenience: find(key) as a double, or `fallback`. */
    double numberOr(const std::string &key, double fallback) const;

    /** Convenience: find(key) as a string, or `fallback`. */
    std::string stringOr(const std::string &key,
                         const std::string &fallback) const;

  private:
    Type type_ = Type::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::shared_ptr<Array> array_;
    std::shared_ptr<Object> object_;

    friend class JsonParser;
};

} // namespace ecov

#endif // ECOV_UTIL_JSON_H
