/**
 * @file
 * Minimal CSV I/O for trace files.
 *
 * Real deployments feed the ecovisor live data (electricityMap for
 * carbon, inverter APIs for solar); offline reproduction replays trace
 * files. The expected format is two numeric columns — time in seconds
 * and a value — with an optional header line, e.g.:
 *
 *   time_s,gco2_per_kwh
 *   0,212.4
 *   300,208.9
 */

#ifndef ECOV_UTIL_CSV_H
#define ECOV_UTIL_CSV_H

#include <string>
#include <utility>
#include <vector>

#include "util/units.h"

namespace ecov {

/**
 * Read a two-column (time_s, value) CSV file.
 *
 * Skips a non-numeric header line if present. Fatal on missing file,
 * malformed rows, or decreasing timestamps.
 *
 * @param path file to read
 * @return parsed (time, value) rows in file order
 */
std::vector<std::pair<TimeS, double>>
readTimeValueCsv(const std::string &path);

/**
 * Write a two-column (time_s, value) CSV file with a header.
 *
 * @param path destination (overwritten)
 * @param header_value name for the value column
 * @param rows samples to write
 */
void writeTimeValueCsv(const std::string &path,
                       const std::string &header_value,
                       const std::vector<std::pair<TimeS, double>> &rows);

} // namespace ecov

#endif // ECOV_UTIL_CSV_H
