/**
 * @file
 * Plain-text table and CSV emitters used by the benchmark harness to
 * print paper-style rows and time series.
 */

#ifndef ECOV_UTIL_TABLE_H
#define ECOV_UTIL_TABLE_H

#include <cstdio>
#include <string>
#include <vector>

namespace ecov {

/**
 * Fixed-column text table that pretty-prints to a FILE stream.
 *
 * Columns are sized to the widest cell. Intended for the per-figure
 * bench binaries, which print the same rows/series the paper reports.
 */
class TextTable
{
  public:
    /** Construct with a header row. */
    explicit TextTable(std::vector<std::string> header);

    /** Append a row (must match the header width). */
    void addRow(std::vector<std::string> row);

    /** Convenience: format doubles with the given precision. */
    static std::string fmt(double v, int precision = 2);

    /** Render the table to a stream (stdout by default). */
    void print(std::FILE *out = stdout) const;

  private:
    std::vector<std::vector<std::string>> rows_;
    std::size_t columns_;
};

/**
 * CSV writer for time-series dumps (one line per sample).
 *
 * Produces output suitable for plotting the paper's figures.
 */
class CsvWriter
{
  public:
    /**
     * Open a CSV stream with a header.
     *
     * @param out destination stream (not owned)
     * @param header column names
     */
    CsvWriter(std::FILE *out, const std::vector<std::string> &header);

    /** Write one row of values. */
    void row(const std::vector<double> &values);

  private:
    std::FILE *out_;
};

} // namespace ecov

#endif // ECOV_UTIL_TABLE_H
