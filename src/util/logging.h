/**
 * @file
 * Minimal logging and error-reporting facility in the gem5 spirit.
 *
 * - inform(): status messages, no connotation of misbehaviour.
 * - warn():   something questionable happened but execution continues.
 * - fatal():  unrecoverable *user* error (bad configuration); throws
 *             FatalError so tests can assert on misuse.
 * - panic():  internal invariant violation (a library bug); aborts.
 */

#ifndef ECOV_UTIL_LOGGING_H
#define ECOV_UTIL_LOGGING_H

#include <stdexcept>
#include <string>

namespace ecov {

/** Exception thrown by fatal() for invalid user configuration. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Global verbosity switch; informs are suppressed when false. */
void setVerbose(bool verbose);

/** True when inform() output is enabled. */
bool verbose();

/** Print an informational message to stderr (when verbose). */
void inform(const std::string &msg);

/** Print a warning message to stderr (always). */
void warn(const std::string &msg);

/** Report an unrecoverable user error by throwing FatalError. */
[[noreturn]] void fatal(const std::string &msg);

/** Report an internal invariant violation; aborts the process. */
[[noreturn]] void panic(const std::string &msg);

} // namespace ecov

#endif // ECOV_UTIL_LOGGING_H
