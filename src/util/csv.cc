#include "util/csv.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/logging.h"

namespace ecov {

namespace {

/** True when the line's first non-space character could begin a
 *  number. */
bool
looksNumeric(const std::string &line)
{
    for (char c : line) {
        if (std::isspace(static_cast<unsigned char>(c)))
            continue;
        return std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
               c == '+' || c == '.';
    }
    return false;
}

} // namespace

std::vector<std::pair<TimeS, double>>
readTimeValueCsv(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("readTimeValueCsv: cannot open " + path);

    std::vector<std::pair<TimeS, double>> rows;
    std::string line;
    bool first = true;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        if (first && !looksNumeric(line)) {
            first = false; // header
            continue;
        }
        first = false;
        std::replace(line.begin(), line.end(), ',', ' ');
        std::istringstream ss(line);
        double t = 0.0, v = 0.0;
        if (!(ss >> t >> v))
            fatal("readTimeValueCsv: malformed row at " + path + ":" +
                  std::to_string(lineno));
        auto ts = static_cast<TimeS>(t);
        if (!rows.empty() && ts < rows.back().first)
            fatal("readTimeValueCsv: decreasing timestamps at " + path +
                  ":" + std::to_string(lineno));
        rows.emplace_back(ts, v);
    }
    if (rows.empty())
        fatal("readTimeValueCsv: no data rows in " + path);
    return rows;
}

void
writeTimeValueCsv(const std::string &path,
                  const std::string &header_value,
                  const std::vector<std::pair<TimeS, double>> &rows)
{
    std::ofstream out(path);
    if (!out)
        fatal("writeTimeValueCsv: cannot open " + path);
    out << std::setprecision(12);
    out << "time_s," << header_value << "\n";
    for (const auto &[t, v] : rows)
        out << t << "," << v << "\n";
    if (!out)
        fatal("writeTimeValueCsv: write failed for " + path);
}

} // namespace ecov
