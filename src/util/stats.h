/**
 * @file
 * Small statistics helpers used by the evaluation harness: an online
 * accumulator (count/mean/stddev/min/max) and percentile computation
 * over retained samples.
 */

#ifndef ECOV_UTIL_STATS_H
#define ECOV_UTIL_STATS_H

#include <cstddef>
#include <vector>

namespace ecov {

/**
 * Online accumulator using Welford's algorithm.
 *
 * Tracks count, mean, variance, min and max without retaining samples.
 */
class RunningStats
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Number of samples added. */
    std::size_t count() const { return count_; }

    /** Arithmetic mean (0 when empty). */
    double mean() const { return mean_; }

    /** Sample variance (0 when fewer than two samples). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Minimum sample (0 when empty). */
    double min() const { return count_ ? min_ : 0.0; }

    /** Maximum sample (0 when empty). */
    double max() const { return count_ ? max_ : 0.0; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

    /** Reset to empty. */
    void reset();

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Sample-retaining collector with percentile queries.
 *
 * Used for latency distributions (e.g. the p95 SLO checks in the web
 * application case studies).
 */
class SampleSet
{
  public:
    /** Add one sample. */
    void add(double x) { samples_.push_back(x); }

    /** Number of retained samples. */
    std::size_t count() const { return samples_.size(); }

    /** Arithmetic mean (0 when empty). */
    double mean() const;

    /**
     * Percentile by linear interpolation between closest ranks.
     *
     * @param p percentile in [0, 100]
     * @return interpolated percentile value; 0 when empty
     */
    double percentile(double p) const;

    /** Read-only access to retained samples. */
    const std::vector<double> &samples() const { return samples_; }

    /** Drop all samples. */
    void clear() { samples_.clear(); }

  private:
    std::vector<double> samples_;
};

/**
 * Percentile of an arbitrary vector (copies and sorts internally).
 *
 * @param values samples (need not be sorted)
 * @param p percentile in [0, 100]
 */
double percentileOf(std::vector<double> values, double p);

} // namespace ecov

#endif // ECOV_UTIL_STATS_H
