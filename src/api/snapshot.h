/**
 * @file
 * Batched calls for the v2 ecovisor API.
 *
 * A policy that reads five Table 1 signals per tick pays five API
 * round-trips (five name resolutions on the v1 surface). The batched
 * surface amortises that:
 *
 *  - EnergySnapshot: every Table 1 getter for one app, filled by a
 *    single Ecovisor::getEnergySnapshot(handle) call. All values are
 *    coherent — read at the same instant of the same tick.
 *
 *  - CapBatch: a set of container power caps submitted together via
 *    Ecovisor::applyCapBatch(). The batch is validated as a unit
 *    (all entries or none — no partially applied cap sets) and
 *    committed atomically at the next tick settlement, so a policy
 *    re-dividing a power budget across N workers can never expose a
 *    transient state where old and new caps mix within a tick.
 *
 * Both bottom out in the cluster's SoA hot columns (cop/columns.h):
 * a snapshot's power values are column-backed aggregate walks, and a
 * committed cap batch writes the utilization-cap column (plus the
 * coherent slot row view) per container. Semantics and every value
 * are unchanged from the pre-column layout — bit-identical by the
 * determinism contract (docs/ARCHITECTURE.md).
 */

#ifndef ECOV_API_SNAPSHOT_H
#define ECOV_API_SNAPSHOT_H

#include <cstddef>
#include <vector>

#include "api/handle.h"

namespace ecov::api {

/**
 * All Table 1 getters for one application, read coherently in one
 * call. Field semantics match the scalar getters exactly.
 */
struct EnergySnapshot
{
    /** Current virtual solar power output, watts. */
    double solar_w = 0.0;
    /** Grid power usage over the last settled tick, watts. */
    double grid_w = 0.0;
    /** Current grid carbon intensity, gCO2/kWh. */
    double grid_carbon_g_per_kwh = 0.0;
    /** Battery discharge rate over the last settled tick, watts. */
    double battery_discharge_w = 0.0;
    /** Energy stored in the virtual battery, watt-hours. */
    double battery_charge_level_wh = 0.0;
    /**
     * True when a sensor blackout is active and the live-evaluated
     * fields (solar_w, grid_carbon_g_per_kwh) are the last *settled*
     * readings rather than fresh ones. The ecovisor never
     * extrapolates through a blackout — it serves the last exact
     * value and says so (docs/FAULTS.md).
     */
    bool stale = false;
};

/** One requested container power cap. */
struct CapRequest
{
    ContainerHandle container;
    /** Cap in watts; kUnlimitedW (infinity) removes the cap. */
    double cap_w = 0.0;
};

/**
 * A set of power caps applied together. Build with add(), submit with
 * Ecovisor::applyCapBatch(). Later entries for the same container win.
 */
class CapBatch
{
  public:
    /** Queue one cap. */
    void
    add(ContainerHandle container, double cap_w)
    {
        requests_.push_back({container, cap_w});
    }

    /** Drop all queued caps. */
    void clear() { requests_.clear(); }

    /** Number of queued caps. */
    std::size_t size() const { return requests_.size(); }

    /** True when nothing is queued. */
    bool empty() const { return requests_.empty(); }

    /** The queued caps, in insertion order. */
    const std::vector<CapRequest> &requests() const { return requests_; }

  private:
    std::vector<CapRequest> requests_;
};

} // namespace ecov::api

#endif // ECOV_API_SNAPSHOT_H
