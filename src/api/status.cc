#include "api/status.h"

#include "util/logging.h"

namespace ecov::api {

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Ok:
        return "ok";
      case ErrorCode::InvalidArgument:
        return "invalid_argument";
      case ErrorCode::InvalidHandle:
        return "invalid_handle";
      case ErrorCode::UnknownApp:
        return "unknown_app";
      case ErrorCode::DuplicateApp:
        return "duplicate_app";
      case ErrorCode::UnknownContainer:
        return "unknown_container";
      case ErrorCode::ShareViolation:
        return "share_violation";
      case ErrorCode::NoBattery:
        return "no_battery";
      case ErrorCode::NoSolar:
        return "no_solar";
      case ErrorCode::ResourceExhausted:
        return "resource_exhausted";
      case ErrorCode::Unavailable:
        return "unavailable";
      case ErrorCode::DeadlineExceeded:
        return "deadline_exceeded";
      case ErrorCode::DataLoss:
        return "data_loss";
    }
    return "?";
}

const Status &
Status::orFatal() const
{
    if (!ok())
        fatal(message_);
    return *this;
}

} // namespace ecov::api
