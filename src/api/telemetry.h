/**
 * @file
 * Typed telemetry-series lookup for the v2 ecovisor API.
 *
 * The telemetry store addresses every series by an interned
 * ts::SeriesId (docs/PERF.md): resolve once, append/query by index
 * thereafter — the same resolve-once discipline api::AppHandle
 * applies to per-app state. These enums name the series the ecovisor
 * records, so a v2 client (EcoLib, a policy, a future RPC transport)
 * obtains ids through Ecovisor::appSeriesId()/containerSeriesId()
 * without ever spelling a measurement string or formatting a
 * container id on its hot path.
 *
 * Interval queries against a resolved series take an epoch-checked
 * ts::Cursor search hint. Under bounded retention
 * (EcovisorOptions::retention_samples / retention_window_s) the
 * series may evict raw samples between queries; the cursor's epoch
 * lets it self-reset instead of hinting at a shifted index, so
 * clients cache cursors freely regardless of the retention policy.
 */

#ifndef ECOV_API_TELEMETRY_H
#define ECOV_API_TELEMETRY_H

namespace ecov::api {

/** Per-app series the ecovisor records each settled tick. */
enum class AppMetric
{
    PowerW,          ///< "app_power_w": settled demand, watts (gauge)
    GridW,           ///< "app_grid_w": grid draw, watts (gauge)
    SolarUsedW,      ///< "app_solar_used_w": solar consumed, watts
    BattDischargeW,  ///< "app_batt_discharge_w": discharge, watts
    BattChargeW,     ///< "app_batt_charge_w": charge (solar+grid), watts
    CarbonG,         ///< "app_carbon_g": per-tick emissions, grams
    BattSoc,         ///< "app_batt_soc": state of charge [0,1]
    Containers,      ///< "app_containers": live container count
};

/** Per-container series (PowerAPI-style attribution, Table 2). */
enum class ContainerMetric
{
    PowerW,   ///< "container_power_w": attributed power, watts (gauge)
    CarbonG,  ///< "container_carbon_g": attributed carbon, grams
};

} // namespace ecov::api

#endif // ECOV_API_TELEMETRY_H
