/**
 * @file
 * Structured error model for the v2 ecovisor API.
 *
 * The paper's prototype (and our compat shim) treats every misuse of
 * the Table 1 surface as fatal: an unknown app name throws from deep
 * inside the supervisor. That is acceptable for figure reproduction
 * but rules out untrusted tenants — a control surface must survive
 * bad tenant input rather than crash (the orchestrator-separation
 * idiom). The v2 surface therefore returns `Status` from every
 * mutating call and `Result<T>` from every query: structured errors
 * the caller can inspect, log, or convert back into the legacy
 * fatal behaviour via orFatal()/value().
 *
 * Design notes:
 *  - Status is cheap on the success path: a code and an empty
 *    (SSO, non-allocating) message string.
 *  - Result<T> is an expected-style carrier; C++20 has no
 *    std::expected, so this is the minimal hand-rolled equivalent.
 *  - orFatal()/value() bridge to the legacy error model by throwing
 *    ecov::FatalError with the same message the v1 surface used, so
 *    shimmed callers observe identical behaviour.
 */

#ifndef ECOV_API_STATUS_H
#define ECOV_API_STATUS_H

#include <optional>
#include <string>
#include <utility>

namespace ecov::api {

/** Machine-inspectable category for a v2 API failure. */
enum class ErrorCode
{
    Ok = 0,
    InvalidArgument,  ///< bad value (negative rate, NaN cap, ...)
    InvalidHandle,    ///< default-constructed or out-of-range handle
    UnknownApp,       ///< name does not resolve to a registered app
    DuplicateApp,     ///< addApp with an already-registered name
    UnknownContainer, ///< container id not live in the COP
    ShareViolation,   ///< aggregate share validation failed (§3.3)
    NoBattery,        ///< battery operation on a battery-less share
    NoSolar,          ///< solar share without a physical array
    ResourceExhausted, ///< admission control: queue/inflight budget hit
    Unavailable,      ///< endpoint shutting down / connection gone
    DeadlineExceeded, ///< per-call deadline elapsed before a reply
    DataLoss,         ///< durable state failed its checksum (ckpt/WAL)
};

/** Stable identifier string for an ErrorCode ("unknown_app", ...). */
const char *errorCodeName(ErrorCode code);

/**
 * The outcome of a v2 API call that returns no value.
 */
class Status
{
  public:
    /** Success. */
    Status() = default;

    /** Success, explicitly. */
    static Status okStatus() { return Status(); }

    /** Failure with a category and a human-readable message. */
    static Status
    error(ErrorCode code, std::string message)
    {
        return Status(code, std::move(message));
    }

    /** True on success. */
    bool ok() const { return code_ == ErrorCode::Ok; }

    /** The failure category (Ok on success). */
    ErrorCode code() const { return code_; }

    /** Human-readable message (empty on success). */
    const std::string &message() const { return message_; }

    /**
     * Legacy bridge: throw FatalError(message) on failure — the exact
     * behaviour of the v1 string API. Returns *this for chaining.
     */
    const Status &orFatal() const;

    explicit operator bool() const { return ok(); }

  private:
    Status(ErrorCode code, std::string message)
        : code_(code), message_(std::move(message))
    {}

    ErrorCode code_ = ErrorCode::Ok;
    std::string message_;
};

/**
 * Expected-style carrier: either a value or an error Status.
 */
template <typename T>
class Result
{
  public:
    /** Success. */
    Result(T value) : value_(std::move(value)) {}

    /** Failure. An Ok status carries no value, so constructing from
     *  one is a caller bug — downgraded to a structured error here
     *  rather than leaving value() to dereference an empty optional. */
    Result(Status status) : status_(std::move(status))
    {
        if (status_.ok())
            status_ = Status::error(ErrorCode::InvalidArgument,
                                    "Result: constructed from an Ok "
                                    "status without a value");
    }

    /** True when a value is present. */
    bool ok() const { return value_.has_value(); }

    /** The carried status (Ok when a value is present). */
    const Status &status() const { return status_; }

    /** The failure category (Ok on success). */
    ErrorCode code() const { return status_.code(); }

    /**
     * The value; throws FatalError(status().message()) when absent —
     * the legacy bridge, mirroring Status::orFatal().
     */
    const T &value() const
    {
        status_.orFatal();
        return *value_;
    }
    T &value()
    {
        status_.orFatal();
        return *value_;
    }

    /** The value, or `fallback` on error. */
    T valueOr(T fallback) const
    {
        return value_ ? *value_ : std::move(fallback);
    }

    explicit operator bool() const { return ok(); }

  private:
    Status status_;
    std::optional<T> value_;
};

} // namespace ecov::api

#endif // ECOV_API_STATUS_H
