/**
 * @file
 * Typed handles for the v2 ecovisor API.
 *
 * The v1 surface keys every per-app call by name: each
 * getSolarPower("app") walks a string-keyed map on the hot path. The
 * v2 surface resolves a name exactly once — at addApp()/findApp()
 * time — into an AppHandle that indexes contiguous per-app state
 * directly (the AoS→SoA discipline: resolve once, index thereafter).
 *
 * Handle stability: an AppHandle is the app's registration index and
 * never changes — later addApp() calls do not invalidate or renumber
 * earlier handles, regardless of name ordering (the supervisor keeps
 * its deterministic sorted *iteration* order separately). Apps cannot
 * currently be removed, so a handle obtained from the registering
 * ecovisor stays valid for that ecovisor's lifetime. Handles are not
 * portable across Ecovisor instances.
 *
 * ContainerHandle wraps the COP's {slot, generation} ContainerRef:
 * resolution is an O(1) bounds check plus generation compare against
 * the cluster's container slab — no id lookup at all — and a handle
 * held across its container's destruction goes *stale* (every v2
 * call through it returns UnknownContainer) instead of aliasing the
 * recycled slot or crashing. Obtain one with handleOf() / the
 * workloads' containerHandles(); like AppHandles, container handles
 * are not portable across Cluster instances.
 */

#ifndef ECOV_API_HANDLE_H
#define ECOV_API_HANDLE_H

#include <cstdint>
#include <vector>

#include "cop/cluster.h"

namespace ecov::api {

/**
 * A resolved application: its registration index in the ecovisor's
 * contiguous per-app state. Default-constructed handles are invalid.
 */
class AppHandle
{
  public:
    /** Invalid handle. */
    constexpr AppHandle() = default;

    /** Handle for a known registration index (tests, iteration). */
    explicit constexpr AppHandle(std::int32_t index) : index_(index) {}

    /** True when this handle was resolved (may still be stale). */
    constexpr bool valid() const { return index_ >= 0; }

    /** The registration index; -1 when invalid. */
    constexpr std::int32_t index() const { return index_; }

    friend constexpr bool
    operator==(AppHandle a, AppHandle b)
    {
        return a.index_ == b.index_;
    }
    friend constexpr bool
    operator!=(AppHandle a, AppHandle b)
    {
        return !(a == b);
    }

  private:
    std::int32_t index_ = -1;
};

/**
 * Typed wrapper around a COP {slot, generation} container reference.
 */
class ContainerHandle
{
  public:
    /** Invalid handle. */
    constexpr ContainerHandle() = default;

    /** Wrap a resolved COP container ref. */
    explicit constexpr ContainerHandle(cop::ContainerRef ref)
        : ref_(ref)
    {}

    /** True when this wraps a resolved ref (may still be stale). */
    constexpr bool valid() const { return ref_.valid(); }

    /** The underlying slab reference. */
    constexpr cop::ContainerRef ref() const { return ref_; }

    friend constexpr bool
    operator==(ContainerHandle a, ContainerHandle b)
    {
        return a.ref_ == b.ref_;
    }
    friend constexpr bool
    operator!=(ContainerHandle a, ContainerHandle b)
    {
        return !(a == b);
    }

  private:
    cop::ContainerRef ref_;
};

/**
 * Resolve a v1 container id into a handle. Unknown or destroyed ids
 * yield an invalid handle (which every v2 call reports as
 * UnknownContainer — resolution itself never fails loudly).
 */
inline ContainerHandle
handleOf(const cop::Cluster &cluster, cop::ContainerId id)
{
    return ContainerHandle(cluster.refOf(id));
}

/** Resolve a COP container-id list into typed handles. */
inline std::vector<ContainerHandle>
wrapContainers(const cop::Cluster &cluster,
               const std::vector<cop::ContainerId> &ids)
{
    std::vector<ContainerHandle> out;
    out.reserve(ids.size());
    for (cop::ContainerId id : ids)
        out.push_back(handleOf(cluster, id));
    return out;
}

} // namespace ecov::api

#endif // ECOV_API_HANDLE_H
