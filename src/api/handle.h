/**
 * @file
 * Typed handles for the v2 ecovisor API.
 *
 * The v1 surface keys every per-app call by name: each
 * getSolarPower("app") walks a string-keyed map on the hot path. The
 * v2 surface resolves a name exactly once — at addApp()/findApp()
 * time — into an AppHandle that indexes contiguous per-app state
 * directly (the AoS→SoA discipline: resolve once, index thereafter).
 *
 * Handle stability: an AppHandle is the app's registration index and
 * never changes — later addApp() calls do not invalidate or renumber
 * earlier handles, regardless of name ordering (the supervisor keeps
 * its deterministic sorted *iteration* order separately). Apps cannot
 * currently be removed, so a handle obtained from the registering
 * ecovisor stays valid for that ecovisor's lifetime. Handles are not
 * portable across Ecovisor instances.
 *
 * ContainerHandle is the typed wrapper for the COP's opaque container
 * id, so the v2 signatures distinguish app and container arguments at
 * compile time instead of by spelling.
 */

#ifndef ECOV_API_HANDLE_H
#define ECOV_API_HANDLE_H

#include <cstdint>
#include <vector>

#include "cop/cluster.h"

namespace ecov::api {

/**
 * A resolved application: its registration index in the ecovisor's
 * contiguous per-app state. Default-constructed handles are invalid.
 */
class AppHandle
{
  public:
    /** Invalid handle. */
    constexpr AppHandle() = default;

    /** Handle for a known registration index (tests, iteration). */
    explicit constexpr AppHandle(std::int32_t index) : index_(index) {}

    /** True when this handle was resolved (may still be stale). */
    constexpr bool valid() const { return index_ >= 0; }

    /** The registration index; -1 when invalid. */
    constexpr std::int32_t index() const { return index_; }

    friend constexpr bool
    operator==(AppHandle a, AppHandle b)
    {
        return a.index_ == b.index_;
    }
    friend constexpr bool
    operator!=(AppHandle a, AppHandle b)
    {
        return !(a == b);
    }

  private:
    std::int32_t index_ = -1;
};

/** Typed wrapper around the COP's opaque container id. */
class ContainerHandle
{
  public:
    /** Invalid handle. */
    constexpr ContainerHandle() = default;

    /** Wrap a COP container id. */
    explicit constexpr ContainerHandle(cop::ContainerId id) : id_(id) {}

    /** True when this wraps a real id (may still be destroyed). */
    constexpr bool valid() const { return id_ != cop::kInvalidContainer; }

    /** The underlying COP id. */
    constexpr cop::ContainerId id() const { return id_; }

    friend constexpr bool
    operator==(ContainerHandle a, ContainerHandle b)
    {
        return a.id_ == b.id_;
    }
    friend constexpr bool
    operator!=(ContainerHandle a, ContainerHandle b)
    {
        return !(a == b);
    }

  private:
    cop::ContainerId id_ = cop::kInvalidContainer;
};

/** Wrap a COP container-id list into typed handles. */
inline std::vector<ContainerHandle>
wrapContainers(const std::vector<cop::ContainerId> &ids)
{
    std::vector<ContainerHandle> out;
    out.reserve(ids.size());
    for (cop::ContainerId id : ids)
        out.emplace_back(id);
    return out;
}

} // namespace ecov::api

#endif // ECOV_API_HANDLE_H
