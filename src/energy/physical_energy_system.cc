#include "energy/physical_energy_system.h"

#include "util/logging.h"

namespace ecov::energy {

PhysicalEnergySystem::PhysicalEnergySystem(
    GridConnection *grid, SolarArray *solar,
    std::optional<BatteryConfig> battery_config)
    : grid_(grid), solar_(solar)
{
    if (!grid_ && !solar_ && !battery_config)
        fatal("PhysicalEnergySystem: at least one power source required");
    if (battery_config)
        battery_.emplace(*battery_config);
}

Battery &
PhysicalEnergySystem::battery()
{
    if (!battery_)
        fatal("PhysicalEnergySystem: no battery installed");
    return *battery_;
}

const Battery &
PhysicalEnergySystem::battery() const
{
    if (!battery_)
        fatal("PhysicalEnergySystem: no battery installed");
    return *battery_;
}

double
PhysicalEnergySystem::solarPowerAt(TimeS t) const
{
    return solar_ ? solar_->powerAt(t) : 0.0;
}

double
PhysicalEnergySystem::gridCarbonAt(TimeS t) const
{
    return grid_ ? grid_->carbonIntensityAt(t) : 0.0;
}

} // namespace ecov::energy
