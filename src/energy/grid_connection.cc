#include "energy/grid_connection.h"

#include <algorithm>

#include "util/logging.h"

namespace ecov::energy {

GridConnection::GridConnection(const carbon::CarbonIntensitySignal *signal,
                               double max_power_w)
    : signal_(signal), max_power_w_(max_power_w)
{
    if (!signal_)
        fatal("GridConnection: null carbon signal");
    if (max_power_w_ < 0.0)
        fatal("GridConnection: negative feeder limit");
}

double
GridConnection::carbonIntensityAt(TimeS t) const
{
    return signal_->intensityAt(t);
}

double
GridConnection::draw(double power_w, TimeS t, TimeS dt_s)
{
    if (power_w < 0.0)
        fatal("GridConnection::draw: negative power");
    if (dt_s <= 0)
        return 0.0;
    double supplied_w = power_w;
    if (max_power_w_ > 0.0)
        supplied_w = std::min(supplied_w, max_power_w_);
    double wh = energyWh(supplied_w, dt_s);
    total_energy_wh_ += wh;
    total_carbon_g_ += carbonGrams(wh, signal_->intensityAt(t));
    return supplied_w;
}

void
GridConnection::resetMeters()
{
    total_energy_wh_ = 0.0;
    total_carbon_g_ = 0.0;
}

} // namespace ecov::energy
