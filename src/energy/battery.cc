#include "energy/battery.h"

#include <algorithm>

#include "util/logging.h"

namespace ecov::energy {

Battery::Battery(const BatteryConfig &config)
    : config_(config)
{
    if (config_.capacity_wh <= 0.0)
        fatal("Battery: capacity must be positive");
    if (config_.soc_floor < 0.0 || config_.soc_floor >= 1.0)
        fatal("Battery: SOC floor must be in [0, 1)");
    if (config_.soc_ceiling <= config_.soc_floor ||
        config_.soc_ceiling > 1.0)
        fatal("Battery: SOC ceiling must be in (floor, 1]");
    if (config_.max_charge_w < 0.0 || config_.max_discharge_w < 0.0)
        fatal("Battery: rate limits must be non-negative");
    if (config_.efficiency <= 0.0 || config_.efficiency > 1.0)
        fatal("Battery: efficiency must be in (0, 1]");
    if (config_.initial_soc < 0.0 || config_.initial_soc > 1.0)
        fatal("Battery: initial SOC must be in [0, 1]");
    energy_wh_ = config_.initial_soc * config_.capacity_wh;
}

double
Battery::availableWh()const
{
    double floor_wh = config_.soc_floor * config_.capacity_wh;
    return std::max(0.0, energy_wh_ - floor_wh);
}

double
Battery::headroomWh() const
{
    double ceil_wh = config_.soc_ceiling * config_.capacity_wh;
    return std::max(0.0, ceil_wh - energy_wh_);
}

bool
Battery::empty() const
{
    return availableWh() <= 1e-9;
}

bool
Battery::full() const
{
    return headroomWh() <= 1e-9;
}

double
Battery::maxChargePowerW(TimeS dt_s) const
{
    if (dt_s <= 0)
        return 0.0;
    // Stored energy per input Wh is `efficiency`; the limiting input
    // power is headroom / (efficiency * hours).
    double hours = static_cast<double>(dt_s) / kSecondsPerHour;
    double by_headroom = headroomWh() / (config_.efficiency * hours);
    return std::min(config_.max_charge_w, by_headroom);
}

double
Battery::maxDischargePowerW(TimeS dt_s) const
{
    if (dt_s <= 0)
        return 0.0;
    double hours = static_cast<double>(dt_s) / kSecondsPerHour;
    double by_energy = availableWh() / hours;
    return std::min(config_.max_discharge_w, by_energy);
}

double
Battery::charge(double power_w, TimeS dt_s)
{
    if (power_w < 0.0)
        fatal("Battery::charge: negative power");
    if (dt_s <= 0)
        return 0.0;
    double accepted_w = std::min(power_w, maxChargePowerW(dt_s));
    double stored_wh = ecov::energyWh(accepted_w, dt_s) * config_.efficiency;
    energy_wh_ += stored_wh;
    return accepted_w;
}

double
Battery::discharge(double power_w, TimeS dt_s)
{
    if (power_w < 0.0)
        fatal("Battery::discharge: negative power");
    if (dt_s <= 0)
        return 0.0;
    double delivered_w = std::min(power_w, maxDischargePowerW(dt_s));
    energy_wh_ -= ecov::energyWh(delivered_w, dt_s);
    if (energy_wh_ < 0.0)
        energy_wh_ = 0.0;
    return delivered_w;
}

void
Battery::setEnergyWh(double energy_wh)
{
    energy_wh_ = clamp(energy_wh, 0.0, config_.capacity_wh);
}

} // namespace ecov::energy
