/**
 * @file
 * Solar array model and irradiance trace generator.
 *
 * Substitute for the Chroma 62020H-150S solar array emulator the
 * prototype uses: the SAE itself replays solar radiation traces, so a
 * trace-driven software source exercises the same code path. The
 * generator produces a clear-sky diurnal bell with autocorrelated cloud
 * attenuation, matching the shape of Figures 8(a) and 10(a).
 */

#ifndef ECOV_ENERGY_SOLAR_ARRAY_H
#define ECOV_ENERGY_SOLAR_ARRAY_H

#include <cstdint>
#include <vector>

#include "util/units.h"

namespace ecov::energy {

/**
 * Trace-driven solar power source.
 *
 * Piecewise-constant output; queries past the trace end wrap modulo
 * the trace period so multi-day runs can reuse daily profiles. A scale
 * factor supports the Figure 10(c)/11 sweeps that scale solar output
 * by a percentage.
 */
class SolarArray
{
  public:
    /** One trace point. */
    struct Point
    {
        TimeS time_s;
        double power_w;
    };

    /**
     * @param points samples with strictly increasing times, values >= 0
     * @param period_s wrap period; must exceed the last sample time
     */
    explicit SolarArray(std::vector<Point> points, TimeS period_s);

    /** Instantaneous (tick-average) power output at time t, in watts. */
    double powerAt(TimeS t) const;

    /** Multiplier applied to trace output (default 1.0). */
    double scale() const { return scale_; }

    /** Set the output multiplier (>= 0). */
    void setScale(double scale);

    /** Peak power of the (scaled) trace, in watts. */
    double peakPowerW() const;

    /** Underlying trace points (unscaled). */
    const std::vector<Point> &points() const { return points_; }

  private:
    std::vector<Point> points_;
    TimeS period_s_;
    double scale_ = 1.0;
};

/** Parameters for the synthetic irradiance generator. */
struct SolarTraceConfig
{
    double peak_w = 400.0;      ///< clear-sky peak output
    double sunrise_hour = 6.0;  ///< local sunrise
    double sunset_hour = 18.0;  ///< local sunset
    double cloudiness = 0.2;    ///< 0 = clear sky, 1 = heavily clouded
    int days = 1;               ///< trace length in days
    TimeS sample_interval_s = 60;
};

/**
 * Generate a diurnal solar trace with autocorrelated cloud noise.
 *
 * @param config shape parameters
 * @param seed RNG seed (cloud process)
 */
SolarArray makeSolarTrace(const SolarTraceConfig &config,
                          std::uint64_t seed);

} // namespace ecov::energy

#endif // ECOV_ENERGY_SOLAR_ARRAY_H
