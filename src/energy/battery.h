/**
 * @file
 * Battery model with the charge-controller semantics the paper's
 * prototype exposes in software.
 *
 * Mirrors the hardware prototype (Section 4): lithium-ion bank with a
 * state-of-charge floor (deep discharges shorten cycle life, so 30 %
 * SOC counts as "empty"), a maximum charge rate (0.25C) and a maximum
 * discharge rate (1C). The same class backs both the physical battery
 * and each application's virtual battery, since the virtual energy
 * system is defined to be functionally equivalent to the physical one
 * (Section 3.3).
 */

#ifndef ECOV_ENERGY_BATTERY_H
#define ECOV_ENERGY_BATTERY_H

#include "util/units.h"

namespace ecov::energy {

/** Static battery configuration. */
struct BatteryConfig
{
    double capacity_wh = 1440.0;      ///< nameplate capacity
    double soc_floor = 0.30;          ///< fraction treated as empty
    double soc_ceiling = 1.0;         ///< fraction treated as full
    double max_charge_w = 360.0;      ///< 0.25C for the paper's bank
    double max_discharge_w = 1440.0;  ///< 1C for the paper's bank
    double efficiency = 1.0;          ///< round-trip efficiency in (0,1]
    double initial_soc = 0.30;        ///< starting state of charge
};

/**
 * Energy store integrated per tick.
 *
 * All power arguments are average watts over the tick; the model
 * converts to watt-hours internally. charge() and discharge() return
 * the power actually accepted/delivered after rate and capacity
 * limits, so callers can settle any shortfall elsewhere (e.g. the
 * grid) — exactly the ordering the ecovisor needs.
 */
class Battery
{
  public:
    /** Construct from a validated configuration. */
    explicit Battery(const BatteryConfig &config);

    /** Configuration this battery was built with. */
    const BatteryConfig &config() const { return config_; }

    /** Stored energy in watt-hours (absolute, including the floor). */
    double energyWh() const { return energy_wh_; }

    /** State of charge as a fraction of nameplate capacity. */
    double soc() const { return energy_wh_ / config_.capacity_wh; }

    /** Energy available above the SOC floor, in watt-hours. */
    double availableWh() const;

    /** Room left below the SOC ceiling, in watt-hours. */
    double headroomWh() const;

    /** True when at (or below) the configured floor. */
    bool empty() const;

    /** True when at (or above) the configured ceiling. */
    bool full() const;

    /**
     * Attempt to charge at a given average power for dt_s seconds.
     *
     * @param power_w requested average charging power (>= 0)
     * @param dt_s tick length
     * @return power actually accepted (<= min(power_w, max charge rate),
     *         further limited by remaining headroom)
     */
    double charge(double power_w, TimeS dt_s);

    /**
     * Attempt to discharge at a given average power for dt_s seconds.
     *
     * @param power_w requested average discharge power (>= 0)
     * @param dt_s tick length
     * @return power actually delivered (<= min(power_w, max discharge
     *         rate), further limited by energy above the floor)
     */
    double discharge(double power_w, TimeS dt_s);

    /**
     * Maximum power this battery could accept over the next dt_s
     * seconds, considering rate limit and headroom.
     */
    double maxChargePowerW(TimeS dt_s) const;

    /**
     * Maximum power this battery could deliver over the next dt_s
     * seconds, considering rate limit and available energy.
     */
    double maxDischargePowerW(TimeS dt_s) const;

    /** Force the stored energy (clamped to [0, capacity]); tests only. */
    void setEnergyWh(double energy_wh);

  private:
    BatteryConfig config_;
    double energy_wh_;
};

} // namespace ecov::energy

#endif // ECOV_ENERGY_BATTERY_H
