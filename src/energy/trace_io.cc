#include "energy/trace_io.h"

#include "util/csv.h"
#include "util/logging.h"

namespace ecov::energy {

SolarArray
loadSolarTraceCsv(const std::string &path, TimeS period_s)
{
    auto rows = readTimeValueCsv(path);
    std::vector<SolarArray::Point> pts;
    pts.reserve(rows.size());
    for (const auto &[t, v] : rows) {
        if (v < 0.0)
            fatal("loadSolarTraceCsv: negative power in " + path);
        pts.push_back({t, v});
    }
    if (period_s == 0) {
        // Derive: last sample time + the trailing sample spacing.
        TimeS last = pts.back().time_s;
        TimeS spacing = pts.size() > 1
            ? last - pts[pts.size() - 2].time_s
            : 1;
        period_s = last + spacing;
    }
    return SolarArray(std::move(pts), period_s);
}

void
saveSolarTraceCsv(const std::string &path, const SolarArray &array)
{
    std::vector<std::pair<TimeS, double>> rows;
    rows.reserve(array.points().size());
    for (const auto &p : array.points())
        rows.emplace_back(p.time_s, p.power_w);
    writeTimeValueCsv(path, "watts", rows);
}

} // namespace ecov::energy
