#include "energy/solar_array.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/logging.h"
#include "util/rng.h"

namespace ecov::energy {

SolarArray::SolarArray(std::vector<Point> points, TimeS period_s)
    : points_(std::move(points)), period_s_(period_s)
{
    if (points_.empty())
        fatal("SolarArray: empty trace");
    if (period_s_ <= 0)
        fatal("SolarArray: period must be positive");
    for (std::size_t i = 0; i < points_.size(); ++i) {
        if (points_[i].power_w < 0.0)
            fatal("SolarArray: negative power in trace");
        if (i > 0 && points_[i].time_s <= points_[i - 1].time_s)
            fatal("SolarArray: times must be strictly increasing");
    }
    if (points_.back().time_s >= period_s_)
        fatal("SolarArray: trace extends past wrap period");
}

double
SolarArray::powerAt(TimeS t) const
{
    t %= period_s_;
    if (t < 0)
        t += period_s_;
    auto it = std::upper_bound(points_.begin(), points_.end(), t,
                               [](TimeS v, const Point &p) {
                                   return v < p.time_s;
                               });
    if (it == points_.begin())
        return points_.front().power_w * scale_;
    return (it - 1)->power_w * scale_;
}

void
SolarArray::setScale(double scale)
{
    if (scale < 0.0)
        fatal("SolarArray: negative scale");
    scale_ = scale;
}

double
SolarArray::peakPowerW() const
{
    double peak = 0.0;
    for (const auto &p : points_)
        peak = std::max(peak, p.power_w);
    return peak * scale_;
}

SolarArray
makeSolarTrace(const SolarTraceConfig &config, std::uint64_t seed)
{
    if (config.peak_w < 0.0)
        fatal("makeSolarTrace: negative peak");
    if (config.sunset_hour <= config.sunrise_hour)
        fatal("makeSolarTrace: sunset must follow sunrise");
    if (config.days <= 0)
        fatal("makeSolarTrace: days must be positive");

    Rng rng(seed);
    std::vector<SolarArray::Point> pts;
    const TimeS day = 24 * 3600;
    const TimeS total = static_cast<TimeS>(config.days) * day;
    pts.reserve(static_cast<std::size_t>(total /
                                         config.sample_interval_s) + 1);

    // Cloud attenuation: first-order autoregressive process in [0, 1].
    double cloud = 0.0;
    const double ar = 0.97;
    for (TimeS t = 0; t < total; t += config.sample_interval_s) {
        double hour = static_cast<double>(t % day) / 3600.0;
        double power = 0.0;
        if (hour > config.sunrise_hour && hour < config.sunset_hour) {
            double span = config.sunset_hour - config.sunrise_hour;
            double x = (hour - config.sunrise_hour) / span; // (0,1)
            // Clear-sky bell (half sine).
            power = config.peak_w * std::sin(std::numbers::pi * x);
            // Autocorrelated cloud attenuation.
            cloud = ar * cloud +
                    (1.0 - ar) * rng.uniform(0.0, config.cloudiness * 2.0);
            double atten = clamp(cloud, 0.0, 0.95);
            power *= (1.0 - atten);
        } else {
            cloud = 0.0;
        }
        pts.push_back({t, std::max(0.0, power)});
    }
    return SolarArray(std::move(pts), total);
}

} // namespace ecov::energy
