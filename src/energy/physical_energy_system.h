/**
 * @file
 * The physical energy system: grid + solar + battery behind one facade.
 *
 * Matches the background model in Section 2: a facility connects to up
 * to three power sources; any subset may be absent (large datacenters
 * may lack local renewables, self-powered edge sites may lack a grid
 * feed). The ecovisor holds privileged access to this object and
 * multiplexes it among applications' virtual energy systems.
 */

#ifndef ECOV_ENERGY_PHYSICAL_ENERGY_SYSTEM_H
#define ECOV_ENERGY_PHYSICAL_ENERGY_SYSTEM_H

#include <memory>
#include <optional>

#include "energy/battery.h"
#include "energy/grid_connection.h"
#include "energy/solar_array.h"
#include "util/units.h"

namespace ecov::energy {

/**
 * Composition of the (up to) three power sources.
 *
 * Ownership: the system owns its battery; grid and solar are borrowed
 * so experiments can share traces between systems. Either may be null
 * to model grid-less or solar-less facilities.
 */
class PhysicalEnergySystem
{
  public:
    /**
     * @param grid borrowed grid connection, may be null
     * @param solar borrowed solar array, may be null
     * @param battery_config battery bank configuration; nullopt = no
     *        battery installed
     */
    PhysicalEnergySystem(GridConnection *grid, SolarArray *solar,
                         std::optional<BatteryConfig> battery_config);

    /** True when a grid feed exists. */
    bool hasGrid() const { return grid_ != nullptr; }

    /** True when a solar array exists. */
    bool hasSolar() const { return solar_ != nullptr; }

    /** True when a battery bank exists. */
    bool hasBattery() const { return battery_.has_value(); }

    /** Grid connection (null when absent). */
    GridConnection *grid() { return grid_; }
    const GridConnection *grid() const { return grid_; }

    /** Solar array (null when absent). */
    SolarArray *solar() { return solar_; }
    const SolarArray *solar() const { return solar_; }

    /** Battery bank; call only when hasBattery(). */
    Battery &battery();
    const Battery &battery() const;

    /** Solar output at time t (0 when no array). */
    double solarPowerAt(TimeS t) const;

    /** Grid carbon intensity at time t (0 when no grid). */
    double gridCarbonAt(TimeS t) const;

  private:
    GridConnection *grid_;
    SolarArray *solar_;
    std::optional<Battery> battery_;
};

} // namespace ecov::energy

#endif // ECOV_ENERGY_PHYSICAL_ENERGY_SYSTEM_H
