/**
 * @file
 * Metered grid connection with an attached carbon-intensity signal.
 *
 * The grid supplies (or absorbs, when net metering) unlimited power on
 * demand; what the ecovisor needs from it is accurate metering of draw
 * per tick and the real-time carbon intensity of that draw.
 */

#ifndef ECOV_ENERGY_GRID_CONNECTION_H
#define ECOV_ENERGY_GRID_CONNECTION_H

#include "carbon/carbon_signal.h"
#include "util/units.h"

namespace ecov::energy {

/**
 * Grid endpoint: unlimited supply, cumulative energy/carbon meters.
 */
class GridConnection
{
  public:
    /**
     * @param signal carbon-intensity source (borrowed; must outlive
     *        this object)
     * @param max_power_w optional feeder limit; 0 = unlimited
     */
    explicit GridConnection(const carbon::CarbonIntensitySignal *signal,
                            double max_power_w = 0.0);

    /** Carbon intensity (gCO2/kWh) of grid power at time t. */
    double carbonIntensityAt(TimeS t) const;

    /**
     * Draw power for one tick and meter the energy and carbon.
     *
     * @param power_w requested average power over the tick
     * @param t tick start time (used for carbon intensity)
     * @param dt_s tick length
     * @return power actually supplied (== request unless a feeder
     *         limit applies)
     */
    double draw(double power_w, TimeS t, TimeS dt_s);

    /** Cumulative energy drawn, watt-hours. */
    double totalEnergyWh() const { return total_energy_wh_; }

    /** Cumulative attributed carbon, grams CO2-eq. */
    double totalCarbonG() const { return total_carbon_g_; }

    /** Feeder limit in watts (0 = unlimited). */
    double maxPowerW() const { return max_power_w_; }

    /** Reset meters (tests and run restarts). */
    void resetMeters();

    /** Overwrite meters with checkpointed values (src/ckpt/). */
    void
    restoreMeters(double total_energy_wh, double total_carbon_g)
    {
        total_energy_wh_ = total_energy_wh;
        total_carbon_g_ = total_carbon_g;
    }

  private:
    const carbon::CarbonIntensitySignal *signal_;
    double max_power_w_;
    double total_energy_wh_ = 0.0;
    double total_carbon_g_ = 0.0;
};

} // namespace ecov::energy

#endif // ECOV_ENERGY_GRID_CONNECTION_H
