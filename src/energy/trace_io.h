/**
 * @file
 * Load and save solar-output traces as CSV files.
 *
 * Enables replaying real inverter/irradiance exports instead of the
 * synthetic diurnal generator: two columns, time in seconds and power
 * in watts.
 */

#ifndef ECOV_ENERGY_TRACE_IO_H
#define ECOV_ENERGY_TRACE_IO_H

#include <string>

#include "energy/solar_array.h"

namespace ecov::energy {

/**
 * Load a solar trace from a CSV file.
 *
 * @param path two-column CSV (time_s, watts)
 * @param period_s wrap period; 0 derives it from the last sample's
 *        time plus its spacing (daily traces wrap naturally)
 */
SolarArray loadSolarTraceCsv(const std::string &path, TimeS period_s = 0);

/** Save a solar trace to CSV (round-trips with loadSolarTraceCsv). */
void saveSolarTraceCsv(const std::string &path, const SolarArray &array);

} // namespace ecov::energy

#endif // ECOV_ENERGY_TRACE_IO_H
