/**
 * @file
 * Deterministic fault schedules (docs/FAULTS.md).
 *
 * A FaultSchedule is a plain list of typed fault events — grid outage
 * windows, solar derating/dropout, battery offline/capacity fade,
 * sensor blackout, transport closes — fixed before the run starts.
 * At every tick boundary the injector folds the events active at that
 * tick into one core::EnergyFaults value; transport events are read
 * by the driver that owns the connections. Nothing here consults a
 * wall clock or an unseeded generator: a chaotic run is a pure
 * function of (schedule, seed) and therefore replayable bit-for-bit,
 * at any ECOV_THREADS value — the same determinism contract as the
 * settlement core (docs/ARCHITECTURE.md).
 */

#ifndef ECOV_FAULT_SCHEDULE_H
#define ECOV_FAULT_SCHEDULE_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/faults.h"
#include "util/units.h"

namespace ecov::fault {

/** What a FaultEvent does while its window is active. */
enum class FaultKind : std::uint8_t
{
    GridOutage,          ///< no grid import; deficits shed as unserved
    SolarDerate,         ///< multiply solar output by `magnitude`
    SolarDropout,        ///< solar output forced to zero
    BatteryOffline,      ///< no battery charge/discharge
    BatteryCapacityFade, ///< usable capacity clamped to `magnitude`
    SensorBlackout,      ///< energy getters serve last settled values
    TransportClose,      ///< close tenant `target`'s connection
};

/** Identifier string for a FaultKind ("grid_outage", ...). */
const char *faultKindName(FaultKind kind);

/** Sentinel target: the event applies to every tenant / site-wide. */
inline constexpr std::uint32_t kAllTargets = 0xFFFFFFFFu;

/**
 * One scheduled fault. Energy faults are active over the half-open
 * window [start_s, end_s); TransportClose fires once at start_s (the
 * driver reads `magnitude` as the outage length in ticks before it
 * may reconnect).
 */
struct FaultEvent
{
    FaultKind kind = FaultKind::GridOutage;
    TimeS start_s = 0;
    TimeS end_s = 0;
    /** Kind-specific: derate factor, capacity fraction, down-ticks. */
    double magnitude = 0.0;
    /** Tenant index for transport faults; kAllTargets otherwise. */
    std::uint32_t target = kAllTargets;
};

/** Shape knobs for the FaultSchedule::storm() generator. */
struct StormProfile
{
    int grid_outages = 2;        ///< outage windows over the horizon
    int solar_events = 3;        ///< derate/dropout windows
    int sensor_blackouts = 2;    ///< blackout windows
    bool battery_offline = true; ///< include one offline window
    double capacity_fade = 0.85; ///< late-run fade factor (1 = none)
    /** Tenants eligible for TransportClose events; 0 disables. */
    std::uint32_t tenants = 0;
    /** Mean transport closes per tenant over the horizon. */
    double closes_per_tenant = 1.0;
};

/**
 * An immutable-after-setup list of fault events plus the fold that
 * turns it into the per-tick active fault set.
 */
class FaultSchedule
{
  public:
    FaultSchedule() = default;

    /** Append one event (validated: windowed kinds need start < end,
     *  derate/fade magnitudes must lie in [0, 1]). */
    void add(const FaultEvent &event);

    bool empty() const { return events_.empty(); }
    std::size_t size() const { return events_.size(); }
    const std::vector<FaultEvent> &events() const { return events_; }

    /**
     * Fold every energy event active at time t into one fault set, in
     * insertion order: outage/offline/blackout flags OR together,
     * derates multiply (dropout is derate 0), capacity fade takes the
     * tightest factor. Transport events never affect the result.
     */
    core::EnergyFaults energyAt(TimeS t) const;

    /**
     * Visit every TransportClose event with start_s in [t0, t1), in
     * insertion order — the driver calls this once per tick with the
     * tick's window to find connections to sever.
     */
    template <typename Fn>
    void
    forEachTransportCloseIn(TimeS t0, TimeS t1, Fn &&fn) const
    {
        for (const FaultEvent &e : events_) {
            if (e.kind == FaultKind::TransportClose &&
                e.start_s >= t0 && e.start_s < t1)
                fn(e);
        }
    }

    /**
     * Generate a deterministic "fault storm" over [0, horizon_s):
     * overlapping energy-fault windows plus seeded per-tenant
     * transport closes, aligned to tick_s boundaries. Same (seed,
     * horizon, tick, profile) -> same schedule, always.
     */
    static FaultSchedule storm(std::uint64_t seed, TimeS horizon_s,
                               TimeS tick_s,
                               const StormProfile &profile = {});

  private:
    std::vector<FaultEvent> events_;
};

} // namespace ecov::fault

#endif // ECOV_FAULT_SCHEDULE_H
