#include "fault/schedule.h"

#include <algorithm>

#include "util/logging.h"
#include "util/rng.h"

namespace ecov::fault {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::GridOutage:
        return "grid_outage";
      case FaultKind::SolarDerate:
        return "solar_derate";
      case FaultKind::SolarDropout:
        return "solar_dropout";
      case FaultKind::BatteryOffline:
        return "battery_offline";
      case FaultKind::BatteryCapacityFade:
        return "battery_capacity_fade";
      case FaultKind::SensorBlackout:
        return "sensor_blackout";
      case FaultKind::TransportClose:
        return "transport_close";
    }
    return "?";
}

void
FaultSchedule::add(const FaultEvent &event)
{
    const bool windowed = event.kind != FaultKind::TransportClose;
    if (windowed && !(event.start_s < event.end_s))
        fatal("FaultSchedule::add: empty fault window");
    if ((event.kind == FaultKind::SolarDerate ||
         event.kind == FaultKind::BatteryCapacityFade) &&
        !(event.magnitude >= 0.0 && event.magnitude <= 1.0))
        fatal("FaultSchedule::add: magnitude must be in [0, 1]");
    events_.push_back(event);
}

core::EnergyFaults
FaultSchedule::energyAt(TimeS t) const
{
    core::EnergyFaults f;
    for (const FaultEvent &e : events_) {
        if (e.kind == FaultKind::TransportClose)
            continue;
        if (t < e.start_s || t >= e.end_s)
            continue;
        switch (e.kind) {
          case FaultKind::GridOutage:
            f.grid_out = true;
            break;
          case FaultKind::SolarDerate:
            f.solar_derate *= e.magnitude;
            break;
          case FaultKind::SolarDropout:
            f.solar_derate = 0.0;
            break;
          case FaultKind::BatteryOffline:
            f.battery_offline = true;
            break;
          case FaultKind::BatteryCapacityFade:
            f.battery_capacity_factor =
                std::min(f.battery_capacity_factor, e.magnitude);
            break;
          case FaultKind::SensorBlackout:
            f.sensor_blackout = true;
            break;
          case FaultKind::TransportClose:
            break;
        }
    }
    return f;
}

FaultSchedule
FaultSchedule::storm(std::uint64_t seed, TimeS horizon_s, TimeS tick_s,
                     const StormProfile &profile)
{
    if (horizon_s <= 0 || tick_s <= 0)
        fatal("FaultSchedule::storm: non-positive horizon or tick");
    const std::int64_t ticks =
        std::max<std::int64_t>(1, horizon_s / tick_s);

    FaultSchedule out;
    Rng rng(seed);

    // One seeded sub-stream per event family, so adding a family
    // never reshuffles the others (the fork() idiom the sim's signal
    // generators use).
    Rng grid_rng = rng.fork();
    Rng solar_rng = rng.fork();
    Rng batt_rng = rng.fork();
    Rng sensor_rng = rng.fork();
    Rng transport_rng = rng.fork();

    auto window = [ticks, tick_s](Rng &r, std::int64_t min_ticks,
                                  std::int64_t max_ticks, TimeS *start,
                                  TimeS *end) {
        const std::int64_t hi =
            std::max(min_ticks, std::min(max_ticks, ticks));
        const std::int64_t len = r.uniformInt(min_ticks, hi);
        const std::int64_t at =
            r.uniformInt(0, std::max<std::int64_t>(0, ticks - len));
        *start = at * tick_s;
        *end = (at + len) * tick_s;
    };

    TimeS a = 0, b = 0;
    for (int i = 0; i < profile.grid_outages; ++i) {
        window(grid_rng, 3, std::max<std::int64_t>(4, ticks / 8), &a,
               &b);
        out.add({FaultKind::GridOutage, a, b, 0.0, kAllTargets});
    }
    for (int i = 0; i < profile.solar_events; ++i) {
        window(solar_rng, 2, std::max<std::int64_t>(3, ticks / 6), &a,
               &b);
        if (solar_rng.bernoulli(0.3)) {
            out.add({FaultKind::SolarDropout, a, b, 0.0, kAllTargets});
        } else {
            out.add({FaultKind::SolarDerate, a, b,
                     solar_rng.uniform(0.3, 0.9), kAllTargets});
        }
    }
    if (profile.battery_offline) {
        window(batt_rng, 2, std::max<std::int64_t>(3, ticks / 10), &a,
               &b);
        out.add({FaultKind::BatteryOffline, a, b, 0.0, kAllTargets});
    }
    if (profile.capacity_fade < 1.0) {
        // Fade sets in past mid-run and persists to the horizon.
        const std::int64_t at = batt_rng.uniformInt(ticks / 2, ticks - 1);
        out.add({FaultKind::BatteryCapacityFade, at * tick_s,
                 ticks * tick_s, profile.capacity_fade, kAllTargets});
    }
    for (int i = 0; i < profile.sensor_blackouts; ++i) {
        window(sensor_rng, 1, std::max<std::int64_t>(2, ticks / 10),
               &a, &b);
        out.add({FaultKind::SensorBlackout, a, b, 0.0, kAllTargets});
    }

    if (profile.tenants > 0 && profile.closes_per_tenant > 0.0 &&
        ticks >= 2) {
        for (std::uint32_t tenant = 0; tenant < profile.tenants;
             ++tenant) {
            Rng per = transport_rng.fork();
            const auto closes = static_cast<std::int64_t>(
                per.uniformInt(0, 1) +
                static_cast<std::int64_t>(profile.closes_per_tenant));
            for (std::int64_t c = 0; c < closes; ++c) {
                const std::int64_t at = per.uniformInt(1, ticks - 1);
                const std::int64_t down = per.uniformInt(
                    1, std::max<std::int64_t>(1, ticks / 4));
                out.add({FaultKind::TransportClose, at * tick_s,
                         at * tick_s, static_cast<double>(down),
                         tenant});
            }
        }
    }
    return out;
}

} // namespace ecov::fault
