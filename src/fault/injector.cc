#include "fault/injector.h"

namespace ecov::fault {

FaultInjector::FaultInjector(core::Ecovisor *eco, FaultSchedule schedule)
    : eco_(eco), schedule_(std::move(schedule))
{
    // Resolve the schedule at the tick's start time: the fault set is
    // a pure function of the schedule and t, so replaying the same
    // schedule reproduces every degraded tick bit-for-bit.
    eco_->setFaultHook([this](TimeS start_s, TimeS) {
        core::EnergyFaults f = schedule_.energyAt(start_s);
        if (f.any())
            ++armed_ticks_;
        eco_->setEnergyFaults(f);
    });
}

FaultInjector::~FaultInjector()
{
    eco_->setFaultHook(nullptr);
    eco_->setEnergyFaults(core::EnergyFaults{});
}

} // namespace ecov::fault
