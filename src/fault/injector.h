/**
 * @file
 * Binds a FaultSchedule to an ecovisor (docs/FAULTS.md).
 *
 * The injector owns the ecovisor's fault hook for its lifetime: at
 * every tick boundary — immediately before the transport commit
 * point — it folds the schedule's active events into the tick's
 * core::EnergyFaults and arms the ecovisor with them. Destruction
 * uninstalls the hook and clears the fault set, so an injector going
 * out of scope restores the healthy system.
 */

#ifndef ECOV_FAULT_INJECTOR_H
#define ECOV_FAULT_INJECTOR_H

#include "core/ecovisor.h"
#include "fault/schedule.h"

namespace ecov::fault {

/**
 * RAII installer for schedule-driven energy faults. One injector per
 * ecovisor at a time (it takes the single fault-hook slot, the same
 * exclusivity rule as ServerCore and the pre-settle hook).
 */
class FaultInjector
{
  public:
    /** @param eco borrowed; must outlive the injector */
    FaultInjector(core::Ecovisor *eco, FaultSchedule schedule);

    ~FaultInjector();

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /** The armed schedule. */
    const FaultSchedule &schedule() const { return schedule_; }

    /** Ticks on which at least one energy fault was active. */
    std::int64_t armedTicks() const { return armed_ticks_; }

    /**
     * Restore the armed-tick counter after a checkpoint reload
     * (src/ckpt/). The schedule itself is configuration — the hook
     * re-derives the active fault set from simulated time, so the
     * counter is the injector's only runtime state.
     */
    void restoreArmedTicks(std::int64_t ticks) { armed_ticks_ = ticks; }

  private:
    core::Ecovisor *eco_;
    FaultSchedule schedule_;
    std::int64_t armed_ticks_ = 0;
};

} // namespace ecov::fault

#endif // ECOV_FAULT_INJECTOR_H
