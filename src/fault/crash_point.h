/**
 * @file
 * Process-global crash injector for durable-write paths
 * (docs/FAULTS.md "Crash points", docs/CHECKPOINT.md).
 *
 * A crash point kills the process with _exit() once a chosen number of
 * bytes has been handed to the checkpoint writer — *mid-write*: the
 * write that crosses the armed offset is truncated to the bytes below
 * it, flushed, and then the process dies. That produces exactly the
 * torn tails the recovery path must survive: a half-written WAL
 * record, a half-written snapshot section, a length header with no
 * payload. The partial bytes are fsync'd before death so the torn
 * state is *guaranteed* on disk — the worst case for recovery, not
 * the luckiest.
 *
 * The counter spans every ckpt write in the process (snapshot and WAL
 * alike), so a test sweeps crash offsets with a single integer. Like
 * the rest of the fault plane it is a branch on a disarmed default:
 * no crash point armed means one predictable-false comparison per
 * write call.
 */

#ifndef ECOV_FAULT_CRASH_POINT_H
#define ECOV_FAULT_CRASH_POINT_H

#include <cstdint>

namespace ecov::fault {

class CrashPoint
{
  public:
    /** Exit code of an injected crash (matches SIGKILL's 128+9, so
     *  harnesses treat injected and real kills alike). */
    static constexpr int kExitCode = 137;

    /** Arm: die once `at_byte` cumulative durable bytes have been
     *  written (0 = die before the first byte). Resets the counter. */
    static void arm(std::int64_t at_byte);

    /** Disarm and reset the counter. */
    static void disarm();

    /** True while armed. */
    static bool armed();

    /** Cumulative bytes admitted since the last arm()/disarm(). */
    static std::int64_t written();

    /**
     * Account `n` bytes about to be written durably. Returns `n` when
     * the armed offset is not crossed; otherwise the partial byte
     * count the caller must write before invoking die(). Advances the
     * counter by the returned amount.
     */
    static std::int64_t admit(std::int64_t n);

    /** Terminate the process immediately (no destructors, no atexit —
     *  a crash, not a shutdown). The caller flushes first. */
    [[noreturn]] static void die();
};

} // namespace ecov::fault

#endif // ECOV_FAULT_CRASH_POINT_H
