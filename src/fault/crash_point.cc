#include "fault/crash_point.h"

#include <unistd.h>

#include "util/logging.h"

namespace ecov::fault {

namespace {
// Single-threaded by contract: crash points are armed by test
// harnesses and daemon flags before the run starts, and every ckpt
// write happens on the settling thread.
std::int64_t g_at = -1; ///< -1 = disarmed
std::int64_t g_written = 0;
} // namespace

void
CrashPoint::arm(std::int64_t at_byte)
{
    if (at_byte < 0)
        fatal("CrashPoint::arm: negative byte offset");
    g_at = at_byte;
    g_written = 0;
}

void
CrashPoint::disarm()
{
    g_at = -1;
    g_written = 0;
}

bool
CrashPoint::armed()
{
    return g_at >= 0;
}

std::int64_t
CrashPoint::written()
{
    return g_written;
}

std::int64_t
CrashPoint::admit(std::int64_t n)
{
    if (g_at < 0 || g_written + n <= g_at) {
        g_written += n;
        return n;
    }
    const std::int64_t allowed = g_at - g_written;
    g_written += allowed;
    return allowed;
}

void
CrashPoint::die()
{
    // _exit, not exit or abort: no destructors, no flushing of other
    // streams, no signal handlers — the closest a test can get to
    // SIGKILL while still choosing the exact byte it dies on.
    _exit(kExitCode);
}

} // namespace ecov::fault
