#include "fault/faulty_transport.h"

namespace ecov::fault {

using api::ErrorCode;
using api::Status;

FaultyTransport::FaultyTransport(net::Transport *inner,
                                 std::uint64_t seed,
                                 const TransportFaultProfile &profile)
    : inner_(inner), rng_(seed), profile_(profile)
{}

Status
FaultyTransport::deadStatus() const
{
    return Status::error(ErrorCode::Unavailable,
                         "FaultyTransport: connection severed by "
                         "injected fault");
}

void
FaultyTransport::rebind(net::Transport *fresh)
{
    inner_ = fresh;
    dead_ = false;
    // Anything still held belonged to the dead connection; it was
    // never delivered, so it counts as dropped. The client's resume
    // retransmission covers it (the frame is still unacknowledged).
    if (!held_.empty()) {
        dropped_ += held_frames_;
        held_.clear();
        held_frames_ = 0;
    }
}

Status
FaultyTransport::flushDelayed()
{
    if (dead_ || held_.empty())
        return Status::okStatus();
    Status st = inner_->send(held_.data(), held_.size());
    if (!st.ok()) {
        // The inner transport failed mid-delivery: the held frames
        // are gone. Drop-implies-death — sever the connection so the
        // loss is observable and the client's resume retransmission
        // recovers the frames (they are still unacknowledged).
        dead_ = true;
        dropped_ += held_frames_;
    }
    held_.clear();
    held_frames_ = 0;
    return st;
}

Status
FaultyTransport::send(const std::uint8_t *data, std::size_t n)
{
    if (dead_)
        return deadStatus();
    if (armed_) {
        const double u = rng_.uniform(0.0, 1.0);
        if (u < profile_.p_kill) {
            // The frame is lost in flight and the connection is gone:
            // drop-implies-death, so the loss is always observable
            // and recoverable via resume + retransmit.
            dead_ = true;
            dropped_ += 1 + held_frames_;
            held_.clear();
            held_frames_ = 0;
            return deadStatus();
        }
        if (u < profile_.p_kill + profile_.p_partial && n > 1) {
            // Deliver held traffic in order, then a prefix of this
            // frame, then die — the server decoder is left mid-frame
            // and the connection's replacement starts clean.
            const bool flushed = flushDelayed().ok();
            const auto cut = static_cast<std::size_t>(
                rng_.uniformInt(1, static_cast<std::int64_t>(n) - 1));
            if (flushed)
                inner_->send(data, cut);
            dead_ = true;
            partials_ += 1;
            return deadStatus();
        }
        if (u < profile_.p_kill + profile_.p_partial + profile_.p_delay) {
            // Hold the frame; order is preserved because every later
            // delivery flushes held traffic first.
            held_.insert(held_.end(), data, data + n);
            held_frames_ += 1;
            delayed_count_ += 1;
            return Status::okStatus();
        }
    }
    Status st = flushDelayed();
    if (!st.ok())
        return st;
    st = inner_->send(data, n);
    if (st.ok())
        delivered_ += 1;
    return st;
}

Status
FaultyTransport::receiveSome(std::vector<std::uint8_t> &buf)
{
    if (dead_)
        return deadStatus();
    return inner_->receiveSome(buf);
}

Status
FaultyTransport::receiveSome(std::vector<std::uint8_t> &buf,
                             int timeout_ms)
{
    if (dead_)
        return deadStatus();
    return inner_->receiveSome(buf, timeout_ms);
}

} // namespace ecov::fault
