/**
 * @file
 * Seeded transport-fault wrapper (docs/FAULTS.md).
 *
 * FaultyTransport sits between a net::Client and a real transport and
 * draws a fate for every *sent frame* from its own seeded Rng stream:
 * deliver, delay (held until the next send or an explicit flush),
 * deliver-a-prefix-then-die, or die outright. Faults are
 * frame-aligned by construction — the wrapper never splits a frame in
 * a way that corrupts framing for *delivered* traffic — and a dropped
 * frame always implies transport death, so a lost request is never
 * silently swallowed: the client observes Unavailable, reconnects,
 * and its resume retransmission recovers every unacknowledged frame
 * (client.h "Reconnect and resume"). The receive path passes through
 * untouched while alive and is Unavailable once dead.
 *
 * Determinism: fates come only from the seed, in send order. The same
 * driver schedule against the same seed produces the same faults —
 * the property the faulted loopback-equality leg asserts at
 * ECOV_THREADS 1 and 4.
 */

#ifndef ECOV_FAULT_FAULTY_TRANSPORT_H
#define ECOV_FAULT_FAULTY_TRANSPORT_H

#include <cstdint>
#include <vector>

#include "net/transport.h"
#include "util/rng.h"

namespace ecov::fault {

/** Per-frame fault probabilities; the remainder delivers cleanly. */
struct TransportFaultProfile
{
    /** Connection dies before the frame leaves (frame lost). */
    double p_kill = 0.0;
    /** A prefix is delivered, then the connection dies. */
    double p_partial = 0.0;
    /** Frame is held, delivered in order on the next send/flush. */
    double p_delay = 0.0;
};

class FaultyTransport : public net::Transport
{
  public:
    /**
     * @param inner borrowed delivery transport; must outlive the
     *        wrapper (or be replaced via rebind() first)
     * @param seed fate stream seed
     * @param profile fault probabilities (disarmed until arm(true))
     */
    FaultyTransport(net::Transport *inner, std::uint64_t seed,
                    const TransportFaultProfile &profile = {});

    /**
     * Enable/disable fault draws. While disarmed every send delivers
     * (after flushing any held frame) and no Rng draw happens — the
     * driver arms only the phases whose faults it is prepared to
     * recover (e.g. mutation sends but not post-settle reads).
     */
    void arm(bool on) { armed_ = on; }

    /** True once a kill/partial fate severed the connection. */
    bool dead() const { return dead_; }

    /**
     * Revive onto a fresh inner transport after the driver
     * reconnected (the old connection object is the caller's to
     * destroy). Clears the dead state; the fate stream continues.
     */
    void rebind(net::Transport *fresh);

    /** Deliver any held (delayed) frame. No-op when dead or empty. */
    api::Status flushDelayed();

    api::Status send(const std::uint8_t *data, std::size_t n) override;
    api::Status receiveSome(std::vector<std::uint8_t> &buf) override;
    api::Status receiveSome(std::vector<std::uint8_t> &buf,
                            int timeout_ms) override;

    // Fate counters (bench/test reporting).
    std::uint64_t framesDelivered() const { return delivered_; }
    std::uint64_t framesDelayed() const { return delayed_count_; }
    std::uint64_t framesDropped() const { return dropped_; }
    std::uint64_t partialWrites() const { return partials_; }

  private:
    api::Status deadStatus() const;

    net::Transport *inner_;
    Rng rng_;
    TransportFaultProfile profile_;
    bool armed_ = false;
    bool dead_ = false;
    /** Held frame bytes, delivered in order before newer traffic. */
    std::vector<std::uint8_t> held_;
    std::uint64_t held_frames_ = 0;
    std::uint64_t delivered_ = 0;
    std::uint64_t delayed_count_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t partials_ = 0;
};

} // namespace ecov::fault

#endif // ECOV_FAULT_FAULTY_TRANSPORT_H
