#include "carbon/carbon_signal.h"

#include <algorithm>

#include "util/logging.h"
#include "util/stats.h"

namespace ecov::carbon {

TraceCarbonSignal::TraceCarbonSignal(std::vector<Point> points,
                                     TimeS period_s)
    : points_(std::move(points)), period_s_(period_s)
{
    if (points_.empty())
        fatal("TraceCarbonSignal: empty trace");
    for (std::size_t i = 1; i < points_.size(); ++i) {
        if (points_[i].time_s <= points_[i - 1].time_s)
            fatal("TraceCarbonSignal: times must be strictly increasing");
    }
    if (period_s_ < 0)
        fatal("TraceCarbonSignal: negative period");
    if (period_s_ > 0 && points_.back().time_s >= period_s_)
        fatal("TraceCarbonSignal: trace extends past wrap period");
}

double
TraceCarbonSignal::intensityAt(TimeS t) const
{
    if (period_s_ > 0) {
        t %= period_s_;
        if (t < 0)
            t += period_s_;
    }
    auto it = std::upper_bound(points_.begin(), points_.end(), t,
                               [](TimeS v, const Point &p) {
                                   return v < p.time_s;
                               });
    if (it == points_.begin())
        return points_.front().intensity_g_per_kwh;
    return (it - 1)->intensity_g_per_kwh;
}

double
TraceCarbonSignal::intensityPercentile(double p) const
{
    std::vector<double> vals;
    vals.reserve(points_.size());
    for (const auto &pt : points_)
        vals.push_back(pt.intensity_g_per_kwh);
    return percentileOf(std::move(vals), p);
}

double
TraceCarbonSignal::intensityPercentile(double p, TimeS t1, TimeS t2) const
{
    std::vector<double> vals;
    for (const auto &pt : points_) {
        if (pt.time_s >= t1 && pt.time_s < t2)
            vals.push_back(pt.intensity_g_per_kwh);
    }
    if (vals.empty())
        return intensityPercentile(p);
    return percentileOf(std::move(vals), p);
}

} // namespace ecov::carbon
