/**
 * @file
 * Synthetic carbon-intensity trace generators for the regions the paper
 * plots in Figure 1 (Ontario, Uruguay, California) and the CAISO-2020
 * style signal used by Section 5.1's experiments.
 *
 * The generators reproduce the qualitative statistics the paper
 * describes:
 *  - Ontario: lowest and flattest (nuclear-dominated), ~25-45 gCO2/kWh.
 *  - Uruguay: slightly higher, moderate variability (hydro + some
 *    thermal backup), ~40-120 gCO2/kWh.
 *  - California: highest mean *and* highest variability (fossil +
 *    deep solar penetration -> a pronounced "duck curve": intensity
 *    dips mid-day when solar floods the grid and peaks in the
 *    evening ramp), ~100-350 gCO2/kWh.
 */

#ifndef ECOV_CARBON_REGION_TRACES_H
#define ECOV_CARBON_REGION_TRACES_H

#include <cstdint>

#include "carbon/carbon_signal.h"
#include "util/units.h"

namespace ecov::carbon {

/** Sampling interval used by the generators (paper: 5 minutes). */
inline constexpr TimeS kCarbonSampleInterval = 5 * 60;

/** Parameters for the diurnal carbon-intensity generator. */
struct RegionProfile
{
    double base_g_per_kwh;      ///< mean intensity around which days vary
    double diurnal_amp;         ///< amplitude of the morning/evening swing
    double solar_dip;           ///< mid-day dip from solar penetration
    double noise_stddev;        ///< Gaussian per-sample noise
    double floor_g_per_kwh;     ///< hard lower bound
    double evening_peak_amp;    ///< extra evening-ramp peak (duck curve)
};

/** Profile matching Figure 1's Ontario curve (nuclear, flat, low). */
RegionProfile ontarioProfile();

/** Profile matching Figure 1's Uruguay curve (hydro, low-moderate). */
RegionProfile uruguayProfile();

/** Profile matching Figure 1's California curve (high, volatile). */
RegionProfile californiaProfile();

/**
 * Generate a diurnal carbon-intensity trace.
 *
 * @param profile region parameters
 * @param days number of 24 h days to generate
 * @param seed RNG seed for the noise component
 * @param sample_interval_s spacing between samples
 * @return piecewise-constant signal spanning days x 24 h
 */
TraceCarbonSignal makeRegionTrace(const RegionProfile &profile,
                                  int days, std::uint64_t seed,
                                  TimeS sample_interval_s =
                                      kCarbonSampleInterval);

/**
 * CAISO-2020-like signal used by the Section 5.1 experiments: the
 * California profile with day-to-day amplitude variation so that
 * randomly chosen job arrivals (the paper runs each job 10 times at
 * random arrivals) see meaningfully different carbon conditions.
 *
 * @param days trace length in days
 * @param seed RNG seed
 */
TraceCarbonSignal makeCaisoLikeTrace(int days, std::uint64_t seed);

} // namespace ecov::carbon

#endif // ECOV_CARBON_REGION_TRACES_H
