/**
 * @file
 * Carbon-intensity information service.
 *
 * Stand-in for electricityMap/WattTime: provides location-specific grid
 * carbon-intensity (gCO2/kWh) sampled at a fine granularity (the paper
 * uses 5-minute samples). Signals are trace-driven so experiments are
 * repeatable.
 */

#ifndef ECOV_CARBON_CARBON_SIGNAL_H
#define ECOV_CARBON_CARBON_SIGNAL_H

#include <vector>

#include "util/units.h"

namespace ecov::carbon {

/**
 * Interface: grid carbon intensity as a function of time.
 */
class CarbonIntensitySignal
{
  public:
    virtual ~CarbonIntensitySignal() = default;

    /** Carbon intensity (gCO2/kWh) at simulated time t. */
    virtual double intensityAt(TimeS t) const = 0;
};

/**
 * Piecewise-constant trace signal.
 *
 * Samples are (start-time, intensity); the intensity holds until the
 * next sample. Queries before the first sample return the first value;
 * queries after the last return the last (traces may be shorter than a
 * run, matching how a live feed keeps reporting its latest estimate).
 * Traces can also be wrapped periodically to extend a daily profile.
 */
class TraceCarbonSignal : public CarbonIntensitySignal
{
  public:
    /** One trace point. */
    struct Point
    {
        TimeS time_s;
        double intensity_g_per_kwh;
    };

    /**
     * @param points trace samples with strictly increasing times
     * @param period_s when > 0, queries wrap modulo this period
     */
    explicit TraceCarbonSignal(std::vector<Point> points,
                               TimeS period_s = 0);

    double intensityAt(TimeS t) const override;

    /** Underlying trace points. */
    const std::vector<Point> &points() const { return points_; }

    /** Wrap period (0 = no wrapping). */
    TimeS period() const { return period_s_; }

    /**
     * Percentile of the trace's intensity values.
     *
     * Used by the WaitAWhile-style policies to pick a resume threshold
     * (the paper uses the 30th/33rd percentile over a 48 h window).
     *
     * @param p percentile in [0, 100]
     */
    double intensityPercentile(double p) const;

    /**
     * Percentile over samples whose (unwrapped) times fall in [t1, t2).
     */
    double intensityPercentile(double p, TimeS t1, TimeS t2) const;

  private:
    std::vector<Point> points_;
    TimeS period_s_;
};

} // namespace ecov::carbon

#endif // ECOV_CARBON_CARBON_SIGNAL_H
