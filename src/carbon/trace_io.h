/**
 * @file
 * Load and save carbon-intensity traces as CSV files.
 *
 * Enables replaying real electricityMap/WattTime exports instead of
 * the synthetic region generators: the file format is two columns,
 * time in seconds and intensity in gCO2/kWh.
 */

#ifndef ECOV_CARBON_TRACE_IO_H
#define ECOV_CARBON_TRACE_IO_H

#include <string>

#include "carbon/carbon_signal.h"

namespace ecov::carbon {

/**
 * Load a carbon-intensity trace from a CSV file.
 *
 * @param path two-column CSV (time_s, gCO2/kWh)
 * @param period_s wrap period (0 = hold last value past trace end)
 */
TraceCarbonSignal loadCarbonTraceCsv(const std::string &path,
                                     TimeS period_s = 0);

/** Save a trace to CSV (round-trips with loadCarbonTraceCsv). */
void saveCarbonTraceCsv(const std::string &path,
                        const TraceCarbonSignal &signal);

} // namespace ecov::carbon

#endif // ECOV_CARBON_TRACE_IO_H
