#include "carbon/trace_io.h"

#include "util/csv.h"
#include "util/logging.h"

namespace ecov::carbon {

TraceCarbonSignal
loadCarbonTraceCsv(const std::string &path, TimeS period_s)
{
    auto rows = readTimeValueCsv(path);
    std::vector<TraceCarbonSignal::Point> pts;
    pts.reserve(rows.size());
    for (const auto &[t, v] : rows) {
        if (v < 0.0)
            fatal("loadCarbonTraceCsv: negative intensity in " + path);
        pts.push_back({t, v});
    }
    return TraceCarbonSignal(std::move(pts), period_s);
}

void
saveCarbonTraceCsv(const std::string &path,
                   const TraceCarbonSignal &signal)
{
    std::vector<std::pair<TimeS, double>> rows;
    rows.reserve(signal.points().size());
    for (const auto &p : signal.points())
        rows.emplace_back(p.time_s, p.intensity_g_per_kwh);
    writeTimeValueCsv(path, "gco2_per_kwh", rows);
}

} // namespace ecov::carbon
