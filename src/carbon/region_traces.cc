#include "carbon/region_traces.h"

#include <cmath>
#include <numbers>
#include <vector>

#include "util/rng.h"

namespace ecov::carbon {

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;
constexpr TimeS kDay = 24 * 3600;

/**
 * Deterministic diurnal shape: a base sinusoid peaking in the evening,
 * a mid-day solar dip, and an evening-ramp bump. hour in [0, 24).
 */
double
diurnalShape(const RegionProfile &p, double hour)
{
    double v = p.base_g_per_kwh;
    // Broad swing: low overnight, higher during the day/evening.
    v += p.diurnal_amp * std::sin(kTwoPi * (hour - 9.0) / 24.0);
    // Mid-day solar dip centred at 13:00, ~5 h wide.
    double dip = std::exp(-0.5 * std::pow((hour - 13.0) / 2.5, 2));
    v -= p.solar_dip * dip;
    // Evening ramp peak centred at 19:30, ~3 h wide.
    double peak = std::exp(-0.5 * std::pow((hour - 19.5) / 1.5, 2));
    v += p.evening_peak_amp * peak;
    return v;
}

} // namespace

RegionProfile
ontarioProfile()
{
    return RegionProfile{35.0, 6.0, 2.0, 1.5, 20.0, 3.0};
}

RegionProfile
uruguayProfile()
{
    return RegionProfile{75.0, 20.0, 10.0, 6.0, 35.0, 12.0};
}

RegionProfile
californiaProfile()
{
    return RegionProfile{230.0, 55.0, 90.0, 14.0, 90.0, 45.0};
}

TraceCarbonSignal
makeRegionTrace(const RegionProfile &profile, int days,
                std::uint64_t seed, TimeS sample_interval_s)
{
    Rng rng(seed);
    std::vector<TraceCarbonSignal::Point> pts;
    const TimeS total = static_cast<TimeS>(days) * kDay;
    pts.reserve(static_cast<std::size_t>(total / sample_interval_s) + 1);
    for (TimeS t = 0; t < total; t += sample_interval_s) {
        double hour = static_cast<double>(t % kDay) / 3600.0;
        double v = diurnalShape(profile, hour);
        v += rng.gaussian(0.0, profile.noise_stddev);
        if (v < profile.floor_g_per_kwh)
            v = profile.floor_g_per_kwh;
        pts.push_back({t, v});
    }
    return TraceCarbonSignal(std::move(pts), total);
}

TraceCarbonSignal
makeCaisoLikeTrace(int days, std::uint64_t seed)
{
    Rng rng(seed);
    RegionProfile base = californiaProfile();
    std::vector<TraceCarbonSignal::Point> pts;
    const TimeS total = static_cast<TimeS>(days) * kDay;
    pts.reserve(static_cast<std::size_t>(total / kCarbonSampleInterval) + 1);
    // Day-to-day variation: shift the base level and scale the solar
    // dip and the evening peak, so different days present different
    // carbon opportunity windows — some days (like some CAISO days)
    // never drop below a job's resume threshold at all.
    double dip_scale = 1.0;
    double peak_scale = 1.0;
    double base_offset = 0.0;
    for (TimeS t = 0; t < total; t += kCarbonSampleInterval) {
        if (t % kDay == 0) {
            dip_scale = rng.uniform(0.6, 1.5);
            peak_scale = rng.uniform(0.7, 1.4);
            base_offset = rng.uniform(-25.0, 60.0);
        }
        RegionProfile p = base;
        p.base_g_per_kwh += base_offset;
        p.solar_dip *= dip_scale;
        p.evening_peak_amp *= peak_scale;
        double hour = static_cast<double>(t % kDay) / 3600.0;
        double v = diurnalShape(p, hour) + rng.gaussian(0.0, p.noise_stddev);
        if (v < p.floor_g_per_kwh)
            v = p.floor_g_per_kwh;
        pts.push_back({t, v});
    }
    return TraceCarbonSignal(std::move(pts), total);
}

} // namespace ecov::carbon
