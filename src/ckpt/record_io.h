/**
 * @file
 * Durable record framing for the checkpoint subsystem
 * (docs/CHECKPOINT.md).
 *
 * Both durable files — the snapshot and the write-ahead log — are
 * sequences of CRC32-framed records:
 *
 *     [u32 payload length][u32 CRC32 of payload][payload bytes]
 *
 * all little-endian, matching the wire codecs the payloads are built
 * with (net/wire.h). The framing gives recovery a crisp taxonomy of
 * on-disk damage:
 *
 *  - a **torn tail** — the file ends inside a header or inside the
 *    last record's payload — is what a crash mid-append leaves behind.
 *    readRecords() truncates it: every complete record before the
 *    tear is returned, the partial bytes are discarded, and the read
 *    still succeeds. Nothing half-written is ever surfaced.
 *  - a **checksum mismatch on a complete record** is corruption, not
 *    a crash artifact (appends cannot leave a full-length record with
 *    wrong bytes). readRecords() stops and reports
 *    api::ErrorCode::DataLoss; the caller must refuse to recover from
 *    the file rather than half-apply it.
 *
 * Writes go through RecordWriter, which routes every byte through
 * fault::CrashPoint — the crash-injection tests choose the exact byte
 * the process dies on — and fsyncs per the configured policy.
 */

#ifndef ECOV_CKPT_RECORD_IO_H
#define ECOV_CKPT_RECORD_IO_H

#include <cstdint>
#include <string>
#include <vector>

#include "api/status.h"

namespace ecov::ckpt {

/** CRC32 (IEEE 802.3, poly 0xEDB88320, reflected) of a byte range. */
std::uint32_t crc32(const std::uint8_t *data, std::size_t n);

/** Durability policy for record appends. */
enum class FsyncPolicy
{
    /** fsync after every append (and every snapshot publish): a
     *  crash loses at most the record being written. The daemon
     *  default. */
    Always,
    /** Never fsync; durability is whatever the page cache grants.
     *  For tests and benches where the "crash" is process death, not
     *  power loss — the kernel keeps the bytes either way. */
    Never,
};

/**
 * Append-only record writer over one file. All I/O is POSIX-fd based
 * so fsync semantics are explicit; every byte is admitted through
 * fault::CrashPoint before it reaches the kernel (a crossed crash
 * point writes the partial prefix, fsyncs it, and dies).
 */
class RecordWriter
{
  public:
    RecordWriter() = default;
    ~RecordWriter();

    RecordWriter(const RecordWriter &) = delete;
    RecordWriter &operator=(const RecordWriter &) = delete;

    /** Open (creating or appending). */
    api::Status open(const std::string &path, FsyncPolicy fsync);

    /** Frame and append one record; flushes per the fsync policy. */
    api::Status append(const std::vector<std::uint8_t> &payload);

    /** Truncate the file to empty (WAL reset after a snapshot). */
    api::Status reset();

    /** fsync regardless of policy (snapshot publish path). */
    api::Status sync();

    void close();

    bool isOpen() const { return fd_ >= 0; }

  private:
    int fd_ = -1;
    FsyncPolicy fsync_ = FsyncPolicy::Always;
    std::string path_; ///< diagnostics only
    std::vector<std::uint8_t> frame_; ///< reused header+payload buffer
};

/**
 * Read every record in a file. Returns Ok with the complete records
 * (torn tail truncated, `*truncated_bytes` reporting how many trailing
 * bytes were discarded), DataLoss on a checksum mismatch, Unavailable
 * on I/O failure. A missing file is Ok with zero records.
 */
api::Status readRecords(const std::string &path,
                        std::vector<std::vector<std::uint8_t>> *out,
                        std::size_t *truncated_bytes = nullptr);

/**
 * Publish a single-record file atomically: write `<path>.tmp` (via
 * RecordWriter, so crash points apply), fsync it, rename over `path`,
 * fsync the directory. Readers therefore always see either the old
 * complete file or the new complete file — never a torn snapshot.
 */
api::Status publishRecordFile(const std::string &path,
                              const std::vector<std::uint8_t> &payload,
                              FsyncPolicy fsync);

} // namespace ecov::ckpt

#endif // ECOV_CKPT_RECORD_IO_H
