#include "ckpt/manager.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstring>

#include "sim/simulation.h"
#include "util/logging.h"

namespace ecov::ckpt {

CheckpointManager::CheckpointManager(const World &world,
                                     CheckpointOptions options)
    : world_(world), options_(std::move(options))
{
    if (!world_.sim || !world_.eco || !world_.cluster)
        fatal("CheckpointManager: sim/eco/cluster are required");
    if (options_.dir.empty())
        fatal("CheckpointManager: state directory must be set");
}

std::string
CheckpointManager::snapshotPath() const
{
    return options_.dir + "/snapshot.eckp";
}

std::string
CheckpointManager::walPath() const
{
    return options_.dir + "/wal.eckw";
}

api::Status
CheckpointManager::recover()
{
    if (recovered_)
        fatal("CheckpointManager::recover: called twice");
    if (::mkdir(options_.dir.c_str(), 0755) != 0 && errno != EEXIST)
        return api::Status::error(api::ErrorCode::Unavailable,
                                  "ckpt: mkdir " + options_.dir + ": " +
                                      std::strerror(errno));

    // Phase 1: read + validate EVERYTHING before touching the world.
    std::vector<std::vector<std::uint8_t>> snap_recs;
    auto st = readRecords(snapshotPath(), &snap_recs);
    if (!st.ok())
        return st;
    bool have_snapshot = false;
    Snapshot snap;
    if (!snap_recs.empty()) {
        if (snap_recs.size() != 1)
            return api::Status::error(
                api::ErrorCode::DataLoss,
                "ckpt: snapshot file holds " +
                    std::to_string(snap_recs.size()) +
                    " records (expected exactly one)");
        st = decodeSnapshot(snap_recs[0], &snap);
        if (!st.ok())
            return st;
        have_snapshot = true;
    }

    std::vector<std::vector<std::uint8_t>> wal_recs;
    st = readRecords(walPath(), &wal_recs);
    if (!st.ok())
        return st;
    std::vector<TickRecord> ticks;
    ticks.reserve(wal_recs.size());
    for (const auto &payload : wal_recs) {
        TickRecord rec;
        st = decodeTickRecord(payload, &rec);
        if (!st.ok())
            return st;
        ticks.push_back(std::move(rec));
    }

    // Phase 2: apply. From here on every failure is fatal rather than
    // a status — a partially-restored world must not keep running.
    if (world_.server)
        world_.server->enableEventRecording(false);
    if (have_snapshot) {
        st = applySnapshot(world_, snap);
        if (!st.ok())
            return st; // shape mismatch: applySnapshot checks all
                       // shapes before mutating, so still untouched
    }

    for (const TickRecord &rec : ticks) {
        const std::int64_t at = world_.sim->clock().tickCount();
        if (rec.tick < at)
            continue; // pre-snapshot leftover (crash between snapshot
                      // publish and WAL reset)
        if (rec.tick != at)
            fatal("ckpt: WAL gap: record for tick " +
                  std::to_string(rec.tick) + " but world is at tick " +
                  std::to_string(at));
        if (!world_.server &&
            (!rec.events.empty() || !rec.ops.empty()))
            fatal(std::string("ckpt: WAL carries session traffic but "
                              "this world has no transport front-end"));
        if (world_.server) {
            for (const net::SessionEvent &ev : rec.events)
                world_.server->applySessionEvent(ev);
            for (const auto &op : rec.ops)
                world_.server->enqueueForReplay(op);
        }
        world_.sim->step();
        ++replayed_ticks_;
    }

    // Phase 3: re-arm. Connections died with the old process, so every
    // bound session starts a fresh lease awaiting Resume; then a clean
    // snapshot supersedes whatever state we recovered from.
    if (world_.server)
        world_.server->detachAllForRecovery();
    st = wal_.open(walPath(), options_.fsync);
    if (!st.ok())
        return st;
    recovered_ = true; // writeSnapshot/beginTick are now legal
    st = writeSnapshot();
    if (!st.ok())
        return st;
    if (world_.server)
        world_.server->enableEventRecording(true);
    recovered_tick_ = world_.sim->clock().tickCount();
    return api::Status::okStatus();
}

api::Status
CheckpointManager::beginTick()
{
    if (!recovered_)
        fatal("CheckpointManager::beginTick: recover() first");
    TickRecord rec;
    rec.tick = world_.sim->clock().tickCount();
    rec.start_s = world_.sim->now();
    if (world_.server) {
        rec.events = world_.server->drainSessionEvents();
        rec.ops = world_.server->canonicalBatch();
    }
    std::vector<std::uint8_t> payload;
    encodeTickRecord(payload, rec);
    return wal_.append(payload);
}

api::Status
CheckpointManager::endTick()
{
    if (!recovered_)
        fatal("CheckpointManager::endTick: recover() first");
    if (options_.every_ticks <= 0)
        return api::Status::okStatus();
    if (world_.sim->clock().tickCount() % options_.every_ticks != 0)
        return api::Status::okStatus();
    return writeSnapshot();
}

api::Status
CheckpointManager::writeSnapshot()
{
    if (!recovered_)
        fatal("CheckpointManager::writeSnapshot: recover() first");
    std::vector<std::uint8_t> payload;
    encodeSnapshot(payload, captureSnapshot(world_));
    auto st = publishRecordFile(snapshotPath(), payload, options_.fsync);
    if (!st.ok())
        return st;
    // The snapshot covers everything the WAL recorded — drop it. A
    // crash between the rename above and this truncate is benign:
    // recovery skips records older than the snapshot's tick.
    return wal_.reset();
}

} // namespace ecov::ckpt
