#include "ckpt/record_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>

#include "fault/crash_point.h"
#include "net/wire.h"

namespace ecov::ckpt {

namespace {

/** Table-driven CRC32; the table is built once, on first use. */
const std::uint32_t *
crcTable()
{
    static const auto table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table.data();
}

api::Status
ioError(const std::string &what)
{
    return api::Status::error(api::ErrorCode::Unavailable,
                              what + ": " + std::strerror(errno));
}

/**
 * Write through the crash point: admit the byte count, write the
 * admitted prefix, and die (after making the torn state durable) when
 * the armed offset was crossed. Plain short writes are retried.
 */
api::Status
durableWrite(int fd, const std::uint8_t *data, std::size_t n,
             const std::string &path)
{
    const std::int64_t allowed =
        fault::CrashPoint::admit(static_cast<std::int64_t>(n));
    const auto to_write = static_cast<std::size_t>(allowed);
    std::size_t off = 0;
    while (off < to_write) {
        const ssize_t w = ::write(fd, data + off, to_write - off);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return ioError("ckpt: write " + path);
        }
        off += static_cast<std::size_t>(w);
    }
    if (allowed < static_cast<std::int64_t>(n)) {
        // Crash point crossed: make the torn prefix durable — the
        // worst case recovery must handle — then die mid-write.
        ::fsync(fd);
        fault::CrashPoint::die();
    }
    return api::Status::okStatus();
}

} // namespace

std::uint32_t
crc32(const std::uint8_t *data, std::size_t n)
{
    const std::uint32_t *t = crcTable();
    std::uint32_t c = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < n; ++i)
        c = t[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

RecordWriter::~RecordWriter()
{
    close();
}

api::Status
RecordWriter::open(const std::string &path, FsyncPolicy fsync)
{
    close();
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd_ < 0)
        return ioError("ckpt: open " + path);
    fsync_ = fsync;
    path_ = path;
    return api::Status::okStatus();
}

api::Status
RecordWriter::append(const std::vector<std::uint8_t> &payload)
{
    if (fd_ < 0)
        return api::Status::error(api::ErrorCode::Unavailable,
                                  "ckpt: append on a closed writer");
    frame_.clear();
    net::WireWriter w(&frame_);
    w.u32(static_cast<std::uint32_t>(payload.size()));
    w.u32(crc32(payload.data(), payload.size()));
    frame_.insert(frame_.end(), payload.begin(), payload.end());
    auto st = durableWrite(fd_, frame_.data(), frame_.size(), path_);
    if (!st.ok())
        return st;
    if (fsync_ == FsyncPolicy::Always && ::fsync(fd_) != 0)
        return ioError("ckpt: fsync " + path_);
    return api::Status::okStatus();
}

api::Status
RecordWriter::reset()
{
    if (fd_ < 0)
        return api::Status::error(api::ErrorCode::Unavailable,
                                  "ckpt: reset on a closed writer");
    if (::ftruncate(fd_, 0) != 0)
        return ioError("ckpt: truncate " + path_);
    if (fsync_ == FsyncPolicy::Always && ::fsync(fd_) != 0)
        return ioError("ckpt: fsync " + path_);
    return api::Status::okStatus();
}

api::Status
RecordWriter::sync()
{
    if (fd_ >= 0 && ::fsync(fd_) != 0)
        return ioError("ckpt: fsync " + path_);
    return api::Status::okStatus();
}

void
RecordWriter::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

api::Status
readRecords(const std::string &path,
            std::vector<std::vector<std::uint8_t>> *out,
            std::size_t *truncated_bytes)
{
    out->clear();
    if (truncated_bytes)
        *truncated_bytes = 0;
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        if (errno == ENOENT)
            return api::Status::okStatus(); // nothing durable yet
        return ioError("ckpt: open " + path);
    }
    std::vector<std::uint8_t> bytes;
    std::uint8_t buf[1 << 16];
    for (;;) {
        const ssize_t r = ::read(fd, buf, sizeof buf);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            ::close(fd);
            return ioError("ckpt: read " + path);
        }
        if (r == 0)
            break;
        bytes.insert(bytes.end(), buf, buf + r);
    }
    ::close(fd);

    std::size_t pos = 0;
    while (pos < bytes.size()) {
        net::WireReader r(bytes.data() + pos, bytes.size() - pos);
        std::uint32_t len = 0, crc = 0;
        if (!r.u32(&len) || !r.u32(&crc) ||
            bytes.size() - pos - 8 < len) {
            // Torn tail: the file ends inside this record. Every
            // complete record before it stands; the tear is dropped.
            if (truncated_bytes)
                *truncated_bytes = bytes.size() - pos;
            return api::Status::okStatus();
        }
        const std::uint8_t *payload = bytes.data() + pos + 8;
        if (crc32(payload, len) != crc)
            return api::Status::error(
                api::ErrorCode::DataLoss,
                "ckpt: checksum mismatch in " + path + " at offset " +
                    std::to_string(pos) +
                    " (complete record, so corruption rather than a "
                    "torn append)");
        out->emplace_back(payload, payload + len);
        pos += 8 + len;
    }
    return api::Status::okStatus();
}

api::Status
publishRecordFile(const std::string &path,
                  const std::vector<std::uint8_t> &payload,
                  FsyncPolicy fsync)
{
    const std::string tmp = path + ".tmp";
    {
        RecordWriter w;
        // The tmp file must start empty even if a previous crash left
        // one behind: unlink first (O_APPEND would concatenate).
        ::unlink(tmp.c_str());
        auto st = w.open(tmp, FsyncPolicy::Never);
        if (!st.ok())
            return st;
        st = w.append(payload);
        if (!st.ok())
            return st;
        st = w.sync(); // the file must be durable before the rename
        if (!st.ok())
            return st;
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0)
        return ioError("ckpt: rename " + tmp);
    if (fsync == FsyncPolicy::Always) {
        // The rename itself must be durable: fsync the directory.
        const auto slash = path.find_last_of('/');
        const std::string dir =
            slash == std::string::npos ? "." : path.substr(0, slash);
        const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
        if (dfd >= 0) {
            ::fsync(dfd);
            ::close(dfd);
        }
    }
    return api::Status::okStatus();
}

} // namespace ecov::ckpt
