/**
 * @file
 * The checkpoint manager: snapshot cadence, WAL appends, and the
 * recovery algorithm (docs/CHECKPOINT.md).
 *
 * Driving loop contract (ecovisord's tick loop, or a test harness):
 *
 *     mgr.recover();                 // once, before the loop
 *     loop {
 *         ...process transport frames / stage mutations...
 *         mgr.beginTick();           // WAL: this tick's inputs
 *         sim.step();                // commit + settle
 *         mgr.endTick();             // snapshot every K ticks
 *     }
 *
 * beginTick() makes the tick's inputs durable *before* they are
 * applied — the write-ahead discipline — so a crash at any byte
 * offset leaves either (a) a torn tail the next recovery truncates
 * (the tick never happened, and its ops were never acked as committed)
 * or (b) a complete record the next recovery replays. Either way the
 * recovered world is bit-identical to some uninterrupted prefix of
 * the run, and continues deterministically from there.
 */

#ifndef ECOV_CKPT_MANAGER_H
#define ECOV_CKPT_MANAGER_H

#include <cstdint>
#include <string>

#include "ckpt/record_io.h"
#include "ckpt/snapshot.h"

namespace ecov::ckpt {

/** Durability knobs (ecovisord flags map 1:1 onto these). */
struct CheckpointOptions
{
    std::string dir;                ///< state directory (created)
    std::int64_t every_ticks = 32;  ///< snapshot cadence; <=0 = never
    FsyncPolicy fsync = FsyncPolicy::Always;
};

/**
 * Binds a World to a state directory. Not thread-safe; call from the
 * tick loop's thread only (the same thread that steps the simulation).
 */
class CheckpointManager
{
  public:
    CheckpointManager(const World &world, CheckpointOptions options);

    /**
     * Recover from the state directory, then arm the WAL for new
     * appends. Idempotent inputs: an empty/missing directory is a
     * fresh start (Ok, zero ticks replayed).
     *
     * The algorithm validates **everything** — snapshot checksum and
     * structure, every WAL record's checksum and structure — before
     * mutating any world state, so a DataLoss return means the world
     * is untouched: corruption is never half-applied. A torn WAL (or
     * snapshot tmp) tail is truncated silently, per record_io.h's
     * taxonomy.
     *
     * Postcondition on Ok: world state equals the uninterrupted run
     * at tick `recoveredTick()`; every previously-bound session is
     * detached with a full lease awaiting Resume; a fresh snapshot is
     * on disk and the WAL is empty; session-event recording is armed.
     */
    api::Status recover();

    /**
     * Append this tick's inputs (drained session events + the
     * canonical mutation batch) to the WAL. Call immediately before
     * sim.step().
     */
    api::Status beginTick();

    /**
     * Snapshot every `every_ticks` ticks (tick-count modulo, so the
     * cadence phase survives recovery). Call immediately after
     * sim.step().
     */
    api::Status endTick();

    /** Force a snapshot now (daemon shutdown path). */
    api::Status writeSnapshot();

    /** Full-state digest of the bound world, right now. */
    std::uint64_t digest() const { return snapshotDigest(world_); }

    /** Tick the world stood at when recover() returned. */
    std::int64_t recoveredTick() const { return recovered_tick_; }

    /** WAL ticks replayed by recover(). */
    std::int64_t replayedTicks() const { return replayed_ticks_; }

    std::string snapshotPath() const;
    std::string walPath() const;

  private:
    World world_;
    CheckpointOptions options_;
    RecordWriter wal_;
    bool recovered_ = false;
    std::int64_t recovered_tick_ = 0;
    std::int64_t replayed_ticks_ = 0;
};

} // namespace ecov::ckpt

#endif // ECOV_CKPT_MANAGER_H
