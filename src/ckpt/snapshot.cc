#include "ckpt/snapshot.h"

#include "energy/grid_connection.h"
#include "energy/physical_energy_system.h"
#include "fault/injector.h"
#include "net/wire.h"
#include "sim/simulation.h"
#include "util/logging.h"

namespace ecov::ckpt {

namespace {

using net::WireReader;
using net::WireWriter;

api::Status
corrupt(const std::string &what)
{
    return api::Status::error(api::ErrorCode::DataLoss,
                              "ckpt: " + what);
}

void
putI64(WireWriter &w, std::int64_t v)
{
    w.u64(static_cast<std::uint64_t>(v));
}

bool
getI64(WireReader &r, std::int64_t *v)
{
    std::uint64_t u = 0;
    if (!r.u64(&u))
        return false;
    *v = static_cast<std::int64_t>(u);
    return true;
}

void
putI32(WireWriter &w, std::int32_t v)
{
    w.u32(static_cast<std::uint32_t>(v));
}

bool
getI32(WireReader &r, std::int32_t *v)
{
    std::uint32_t u = 0;
    if (!r.u32(&u))
        return false;
    *v = static_cast<std::int32_t>(u);
    return true;
}

void
putString(WireWriter &w, const std::string &s)
{
    w.u32(static_cast<std::uint32_t>(s.size()));
    w.bytes(s);
}

bool
getString(WireReader &r, std::string *s)
{
    std::uint32_t len = 0;
    std::string_view v;
    if (!r.u32(&len) || !r.bytes(&v, len))
        return false;
    s->assign(v);
    return true;
}

// --- shared sub-codecs ------------------------------------------------

void
putShare(WireWriter &w, const core::AppShareConfig &s)
{
    w.f64(s.solar_fraction);
    w.f64(s.grid_max_w);
    w.u8(s.battery ? 1 : 0);
    if (s.battery) {
        w.f64(s.battery->capacity_wh);
        w.f64(s.battery->soc_floor);
        w.f64(s.battery->soc_ceiling);
        w.f64(s.battery->max_charge_w);
        w.f64(s.battery->max_discharge_w);
        w.f64(s.battery->efficiency);
        w.f64(s.battery->initial_soc);
    }
}

bool
getShare(WireReader &r, core::AppShareConfig *s)
{
    std::uint8_t has_batt = 0;
    if (!r.f64(&s->solar_fraction) || !r.f64(&s->grid_max_w) ||
        !r.u8(&has_batt))
        return false;
    if (has_batt) {
        energy::BatteryConfig b;
        if (!r.f64(&b.capacity_wh) || !r.f64(&b.soc_floor) ||
            !r.f64(&b.soc_ceiling) || !r.f64(&b.max_charge_w) ||
            !r.f64(&b.max_discharge_w) || !r.f64(&b.efficiency) ||
            !r.f64(&b.initial_soc))
            return false;
        s->battery = b;
    } else {
        s->battery.reset();
    }
    return true;
}

void
putSettlement(WireWriter &w, const core::TickSettlement &s)
{
    putI64(w, s.start_s);
    putI64(w, s.dt_s);
    w.f64(s.demand_w);
    w.f64(s.solar_w);
    w.f64(s.solar_used_w);
    w.f64(s.batt_discharge_w);
    w.f64(s.grid_w);
    w.f64(s.grid_to_demand_w);
    w.f64(s.batt_charge_solar_w);
    w.f64(s.batt_charge_grid_w);
    w.f64(s.curtailed_w);
    w.f64(s.carbon_g);
    w.f64(s.intensity_g_per_kwh);
    w.f64(s.unserved_w);
}

bool
getSettlement(WireReader &r, core::TickSettlement *s)
{
    return getI64(r, &s->start_s) && getI64(r, &s->dt_s) &&
           r.f64(&s->demand_w) && r.f64(&s->solar_w) &&
           r.f64(&s->solar_used_w) && r.f64(&s->batt_discharge_w) &&
           r.f64(&s->grid_w) && r.f64(&s->grid_to_demand_w) &&
           r.f64(&s->batt_charge_solar_w) &&
           r.f64(&s->batt_charge_grid_w) && r.f64(&s->curtailed_w) &&
           r.f64(&s->carbon_g) && r.f64(&s->intensity_g_per_kwh) &&
           r.f64(&s->unserved_w);
}

void
putVes(WireWriter &w, const core::VesImage &v)
{
    w.f64(v.charge_rate_w);
    w.f64(v.max_discharge_w);
    w.u8(v.has_battery ? 1 : 0);
    w.f64(v.battery_energy_wh);
    putSettlement(w, v.last);
    w.f64(v.total_energy_wh);
    w.f64(v.total_grid_wh);
    w.f64(v.total_solar_wh);
    w.f64(v.total_curtailed_wh);
    w.f64(v.total_carbon_g);
}

bool
getVes(WireReader &r, core::VesImage *v)
{
    std::uint8_t has_batt = 0;
    if (!r.f64(&v->charge_rate_w) || !r.f64(&v->max_discharge_w) ||
        !r.u8(&has_batt) || !r.f64(&v->battery_energy_wh) ||
        !getSettlement(r, &v->last) || !r.f64(&v->total_energy_wh) ||
        !r.f64(&v->total_grid_wh) || !r.f64(&v->total_solar_wh) ||
        !r.f64(&v->total_curtailed_wh) || !r.f64(&v->total_carbon_g))
        return false;
    v->has_battery = has_batt != 0;
    return true;
}

void
putCluster(WireWriter &w, const cop::ClusterImage &c)
{
    w.u32(static_cast<std::uint32_t>(c.slots.size()));
    for (const auto &s : c.slots) {
        w.u8(s.live ? 1 : 0);
        w.u32(s.generation);
        if (!s.live)
            continue;
        putI64(w, s.c.id);
        putI32(w, s.c.app);
        putI32(w, s.c.node);
        w.f64(s.c.cores);
        w.f64(s.c.util_cap);
        w.f64(s.c.demand);
        w.f64(s.c.gpu_util);
    }
    w.u32(static_cast<std::uint32_t>(c.free_slots.size()));
    for (std::int32_t s : c.free_slots)
        putI32(w, s);
    w.u32(static_cast<std::uint32_t>(c.apps.size()));
    for (const std::string &name : c.apps)
        putString(w, name);
    putI64(w, c.next_id);
}

bool
getCluster(WireReader &r, cop::ClusterImage *c)
{
    std::uint32_t n = 0;
    if (!r.u32(&n))
        return false;
    c->slots.clear();
    c->slots.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        cop::ClusterImage::SlotImage s;
        std::uint8_t live = 0;
        if (!r.u8(&live) || !r.u32(&s.generation))
            return false;
        s.live = live != 0;
        if (s.live &&
            !(getI64(r, &s.c.id) && getI32(r, &s.c.app) &&
              getI32(r, &s.c.node) && r.f64(&s.c.cores) &&
              r.f64(&s.c.util_cap) && r.f64(&s.c.demand) &&
              r.f64(&s.c.gpu_util)))
            return false;
        c->slots.push_back(s);
    }
    if (!r.u32(&n))
        return false;
    c->free_slots.clear();
    c->free_slots.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        std::int32_t s = 0;
        if (!getI32(r, &s))
            return false;
        c->free_slots.push_back(s);
    }
    if (!r.u32(&n))
        return false;
    c->apps.clear();
    c->apps.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        std::string name;
        if (!getString(r, &name))
            return false;
        c->apps.push_back(std::move(name));
    }
    return getI64(r, &c->next_id);
}

void
putEcovisor(WireWriter &w, const core::EcovisorImage &e)
{
    w.u32(static_cast<std::uint32_t>(e.apps.size()));
    for (const auto &a : e.apps) {
        putString(w, a.name);
        putShare(w, a.share);
        putVes(w, a.ves);
    }
    w.u32(static_cast<std::uint32_t>(e.powercaps.size()));
    for (const auto &[id, cap_w] : e.powercaps) {
        putI64(w, id);
        w.f64(cap_w);
    }
    w.u32(static_cast<std::uint32_t>(e.emergency_capped.size()));
    for (cop::ContainerId id : e.emergency_capped)
        putI64(w, id);
    putI64(w, e.degraded_ticks);
    putI64(w, e.slo_violation_ticks);
    w.f64(e.unserved_wh);
    w.f64(e.net_metered_wh);
    w.f64(e.curtailed_wh);
    putI64(w, e.last_settled_s);
    putI64(w, e.last_dt_s);
    w.f64(e.last_site_solar_w);
    w.f64(e.last_intensity);
    putI64(w, e.settled_ticks);
}

bool
getEcovisor(WireReader &r, core::EcovisorImage *e)
{
    std::uint32_t n = 0;
    if (!r.u32(&n))
        return false;
    e->apps.clear();
    e->apps.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        core::EcovisorImage::AppImage a;
        if (!getString(r, &a.name) || !getShare(r, &a.share) ||
            !getVes(r, &a.ves))
            return false;
        e->apps.push_back(std::move(a));
    }
    if (!r.u32(&n))
        return false;
    e->powercaps.clear();
    e->powercaps.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        std::int64_t id = 0;
        double cap_w = 0.0;
        if (!getI64(r, &id) || !r.f64(&cap_w))
            return false;
        e->powercaps.emplace_back(id, cap_w);
    }
    if (!r.u32(&n))
        return false;
    e->emergency_capped.clear();
    e->emergency_capped.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        std::int64_t id = 0;
        if (!getI64(r, &id))
            return false;
        e->emergency_capped.push_back(id);
    }
    return getI64(r, &e->degraded_ticks) &&
           getI64(r, &e->slo_violation_ticks) &&
           r.f64(&e->unserved_wh) && r.f64(&e->net_metered_wh) &&
           r.f64(&e->curtailed_wh) && getI64(r, &e->last_settled_s) &&
           getI64(r, &e->last_dt_s) && r.f64(&e->last_site_solar_w) &&
           r.f64(&e->last_intensity) && getI64(r, &e->settled_ticks);
}

void
putSessions(WireWriter &w, const net::ServerCoreImage &img)
{
    w.u32(img.next_session);
    w.u32(static_cast<std::uint32_t>(img.sessions.size()));
    for (const auto &s : img.sessions) {
        w.u32(s.id);
        w.u64(s.token);
        w.u8(s.bound ? 1 : 0);
        w.u32(s.lease_left);
        w.u32(s.committed_max);
        w.u32(static_cast<std::uint32_t>(s.apps.size()));
        for (std::int32_t a : s.apps)
            putI32(w, a);
        w.u32(static_cast<std::uint32_t>(s.containers.size()));
        for (const cop::ContainerRef &ref : s.containers) {
            putI32(w, ref.slot);
            w.u32(ref.generation);
        }
        w.u32(static_cast<std::uint32_t>(s.done.size()));
        for (const auto &[req_id, bytes] : s.done) {
            w.u32(req_id);
            w.u32(static_cast<std::uint32_t>(bytes.size()));
            w.bytes(std::string_view(
                reinterpret_cast<const char *>(bytes.data()),
                bytes.size()));
        }
    }
}

bool
getSessions(WireReader &r, net::ServerCoreImage *img)
{
    std::uint32_t n = 0;
    if (!r.u32(&img->next_session) || !r.u32(&n))
        return false;
    img->sessions.clear();
    img->sessions.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        net::SessionImage s;
        std::uint8_t bound = 0;
        std::uint32_t m = 0;
        if (!r.u32(&s.id) || !r.u64(&s.token) || !r.u8(&bound) ||
            !r.u32(&s.lease_left) || !r.u32(&s.committed_max) ||
            !r.u32(&m))
            return false;
        s.bound = bound != 0;
        s.apps.reserve(m);
        for (std::uint32_t k = 0; k < m; ++k) {
            std::int32_t a = 0;
            if (!getI32(r, &a))
                return false;
            s.apps.push_back(a);
        }
        if (!r.u32(&m))
            return false;
        s.containers.reserve(m);
        for (std::uint32_t k = 0; k < m; ++k) {
            cop::ContainerRef ref;
            if (!getI32(r, &ref.slot) || !r.u32(&ref.generation))
                return false;
            s.containers.push_back(ref);
        }
        if (!r.u32(&m))
            return false;
        s.done.reserve(m);
        for (std::uint32_t k = 0; k < m; ++k) {
            std::uint32_t req_id = 0, len = 0;
            std::string_view v;
            if (!r.u32(&req_id) || !r.u32(&len) || !r.bytes(&v, len))
                return false;
            s.done.emplace_back(
                req_id,
                std::vector<std::uint8_t>(
                    reinterpret_cast<const std::uint8_t *>(v.data()),
                    reinterpret_cast<const std::uint8_t *>(v.data()) +
                        v.size()));
        }
        img->sessions.push_back(std::move(s));
    }
    return true;
}

} // namespace

// ---------------------------------------------------------------------
// Snapshot.
// ---------------------------------------------------------------------

Snapshot
captureSnapshot(const World &w)
{
    if (!w.sim || !w.eco || !w.cluster)
        fatal("ckpt::captureSnapshot: sim/eco/cluster are required");
    Snapshot s;
    s.tick = w.sim->clock().tickCount();
    s.now_s = w.sim->now();
    s.cluster = w.cluster->captureState();
    s.eco = w.eco->captureState();
    if (w.phys && w.phys->hasBattery()) {
        s.has_phys_battery = true;
        s.phys_battery_wh = w.phys->battery().energyWh();
    }
    if (w.grid) {
        s.has_grid = true;
        s.grid_energy_wh = w.grid->totalEnergyWh();
        s.grid_carbon_g = w.grid->totalCarbonG();
    }
    s.injector_armed_ticks = w.injector ? w.injector->armedTicks() : 0;
    if (w.server) {
        s.has_server = true;
        s.server = w.server->captureSessions();
    }
    return s;
}

void
encodeSnapshot(std::vector<std::uint8_t> &out, const Snapshot &s)
{
    WireWriter w(&out);
    w.u32(kSnapshotMagic);
    w.u32(kSnapshotVersion);
    putI64(w, s.tick);
    putI64(w, s.now_s);
    putCluster(w, s.cluster);
    putEcovisor(w, s.eco);
    w.u8(s.has_phys_battery ? 1 : 0);
    w.f64(s.phys_battery_wh);
    w.u8(s.has_grid ? 1 : 0);
    w.f64(s.grid_energy_wh);
    w.f64(s.grid_carbon_g);
    putI64(w, s.injector_armed_ticks);
    w.u8(s.has_server ? 1 : 0);
    if (s.has_server)
        putSessions(w, s.server);
}

api::Status
decodeSnapshot(const std::vector<std::uint8_t> &payload, Snapshot *out)
{
    WireReader r(payload.data(), payload.size());
    std::uint32_t magic = 0, version = 0;
    if (!r.u32(&magic) || magic != kSnapshotMagic)
        return corrupt("snapshot: bad magic");
    if (!r.u32(&version) || version != kSnapshotVersion)
        return corrupt("snapshot: unknown version " +
                       std::to_string(version));
    std::uint8_t has_batt = 0, has_grid = 0, has_server = 0;
    if (!getI64(r, &out->tick) || !getI64(r, &out->now_s) ||
        !getCluster(r, &out->cluster) || !getEcovisor(r, &out->eco) ||
        !r.u8(&has_batt) || !r.f64(&out->phys_battery_wh) ||
        !r.u8(&has_grid) || !r.f64(&out->grid_energy_wh) ||
        !r.f64(&out->grid_carbon_g) ||
        !getI64(r, &out->injector_armed_ticks) || !r.u8(&has_server))
        return corrupt("snapshot: truncated structure");
    out->has_phys_battery = has_batt != 0;
    out->has_grid = has_grid != 0;
    out->has_server = has_server != 0;
    if (out->has_server && !getSessions(r, &out->server))
        return corrupt("snapshot: truncated session plane");
    if (!r.done())
        return corrupt("snapshot: trailing bytes");
    return api::Status::okStatus();
}

api::Status
applySnapshot(const World &w, const Snapshot &s)
{
    if (!w.sim || !w.eco || !w.cluster)
        fatal("ckpt::applySnapshot: sim/eco/cluster are required");
    const bool world_batt = w.phys && w.phys->hasBattery();
    if (s.has_phys_battery != world_batt)
        return corrupt("snapshot: physical-battery shape mismatch");
    if (s.has_grid != (w.grid != nullptr))
        return corrupt("snapshot: grid shape mismatch");
    if (s.has_server != (w.server != nullptr))
        return corrupt("snapshot: session-plane shape mismatch");
    w.cluster->restoreState(s.cluster);
    w.eco->restoreState(s.eco);
    if (world_batt)
        w.phys->battery().setEnergyWh(s.phys_battery_wh);
    if (w.grid)
        w.grid->restoreMeters(s.grid_energy_wh, s.grid_carbon_g);
    if (w.injector)
        w.injector->restoreArmedTicks(s.injector_armed_ticks);
    else if (s.injector_armed_ticks != 0)
        return corrupt("snapshot: armed fault ticks without an "
                       "injector to restore them into");
    if (w.server)
        w.server->restoreSessions(s.server);
    w.sim->restoreClock(s.now_s, s.tick);
    return api::Status::okStatus();
}

// ---------------------------------------------------------------------
// WAL records.
// ---------------------------------------------------------------------

void
encodeTickRecord(std::vector<std::uint8_t> &out, const TickRecord &rec)
{
    WireWriter w(&out);
    w.u32(kWalMagic);
    w.u32(kWalVersion);
    putI64(w, rec.tick);
    putI64(w, rec.start_s);
    w.u32(static_cast<std::uint32_t>(rec.events.size()));
    for (const net::SessionEvent &ev : rec.events) {
        w.u8(static_cast<std::uint8_t>(ev.kind));
        w.u32(ev.session);
        w.u64(ev.token);
    }
    w.u32(static_cast<std::uint32_t>(rec.ops.size()));
    for (const auto &op : rec.ops) {
        w.u32(op.session);
        w.u32(op.req_id);
        w.u8(static_cast<std::uint8_t>(op.op));
        w.u32(op.id);
        w.f64(op.value);
        putString(w, op.reg.name);
        putShare(w, op.reg.share);
        w.u32(static_cast<std::uint32_t>(op.caps.size()));
        for (const net::CapEntry &e : op.caps) {
            w.u32(e.container);
            w.f64(e.cap_w);
        }
    }
}

api::Status
decodeTickRecord(const std::vector<std::uint8_t> &payload,
                 TickRecord *out)
{
    WireReader r(payload.data(), payload.size());
    std::uint32_t magic = 0, version = 0;
    if (!r.u32(&magic) || magic != kWalMagic)
        return corrupt("wal: bad record magic");
    if (!r.u32(&version) || version != kWalVersion)
        return corrupt("wal: unknown record version " +
                       std::to_string(version));
    if (!getI64(r, &out->tick) || !getI64(r, &out->start_s))
        return corrupt("wal: truncated record header");
    std::uint32_t n = 0;
    if (!r.u32(&n))
        return corrupt("wal: truncated event count");
    out->events.clear();
    out->events.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        net::SessionEvent ev;
        std::uint8_t kind = 0;
        if (!r.u8(&kind) || !r.u32(&ev.session) || !r.u64(&ev.token))
            return corrupt("wal: truncated session event");
        if (kind > 4)
            return corrupt("wal: unknown session-event kind");
        ev.kind = static_cast<net::SessionEvent::Kind>(kind);
        out->events.push_back(ev);
    }
    if (!r.u32(&n))
        return corrupt("wal: truncated op count");
    out->ops.clear();
    out->ops.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        net::ServerCore::PendingOp op;
        std::uint8_t raw_op = 0;
        if (!r.u32(&op.session) || !r.u32(&op.req_id) ||
            !r.u8(&raw_op) || !r.u32(&op.id) || !r.f64(&op.value) ||
            !getString(r, &op.reg.name) || !getShare(r, &op.reg.share))
            return corrupt("wal: truncated op");
        if (!net::validOpcode(raw_op))
            return corrupt("wal: unknown opcode in op");
        op.op = static_cast<net::Opcode>(raw_op);
        std::uint32_t caps = 0;
        if (!r.u32(&caps))
            return corrupt("wal: truncated cap count");
        op.caps.reserve(caps);
        for (std::uint32_t k = 0; k < caps; ++k) {
            net::CapEntry e;
            if (!r.u32(&e.container) || !r.f64(&e.cap_w))
                return corrupt("wal: truncated cap entry");
            op.caps.push_back(e);
        }
        out->ops.push_back(std::move(op));
    }
    if (!r.done())
        return corrupt("wal: trailing bytes in record");
    return api::Status::okStatus();
}

std::uint64_t
snapshotDigest(const World &w)
{
    std::vector<std::uint8_t> bytes;
    encodeSnapshot(bytes, captureSnapshot(w));
    // FNV-1a 64: cheap, stable, and order-sensitive — exactly what a
    // canonical-encoding fingerprint needs (not cryptographic; the
    // threat model is divergence, not forgery).
    std::uint64_t h = 14695981039346656037ull;
    for (std::uint8_t b : bytes) {
        h ^= b;
        h *= 1099511628211ull;
    }
    return h;
}

} // namespace ecov::ckpt
