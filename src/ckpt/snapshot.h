/**
 * @file
 * Snapshot and WAL payload codecs + the world binding
 * (docs/CHECKPOINT.md).
 *
 * A **snapshot** is one record (record_io.h framing) holding the
 * complete runtime state of an ecovisor world at a tick boundary:
 * simulation clock position, the COP slab (cop::ClusterImage), the
 * ecovisor and every app's VES (core::EcovisorImage), physical
 * battery charge and grid meters, the fault injector's armed-tick
 * counter, and — when a transport front-end is attached — the session
 * plane (net::ServerCoreImage). Everything in the image is state that
 * determines future committed results; derived observables (telemetry
 * history, server stats, outboxes) are deliberately excluded, so two
 * worlds that will behave identically encode identically.
 *
 * A **WAL record** is one tick's input: the session-plane events that
 * occurred since the previous tick plus the canonically-ordered
 * committed mutation batch, stamped with the clock position it was
 * applied at. Recovery = load snapshot + replay WAL records through
 * the normal commit path (enqueueForReplay + one sim step each) —
 * the replayed ticks run the very same settlement code in the very
 * same order, so the result is bit-identical to the uninterrupted
 * run at --tolerance=0.
 *
 * All integers/doubles use the little-endian wire primitives
 * (net/wire.h); doubles travel as IEEE-754 bit patterns, preserving
 * bit-identity through the file.
 */

#ifndef ECOV_CKPT_SNAPSHOT_H
#define ECOV_CKPT_SNAPSHOT_H

#include <cstdint>
#include <vector>

#include "api/status.h"
#include "core/ecovisor.h"
#include "net/server.h"
#include "util/units.h"

namespace ecov::sim {
class Simulation;
}
namespace ecov::energy {
class PhysicalEnergySystem;
class GridConnection;
}
namespace ecov::fault {
class FaultInjector;
}

namespace ecov::ckpt {

/** Snapshot format magic + revision (first fields of the payload). */
inline constexpr std::uint32_t kSnapshotMagic = 0x504B4345u; // "ECKP"
inline constexpr std::uint32_t kSnapshotVersion = 1;
/** WAL record magic + revision. */
inline constexpr std::uint32_t kWalMagic = 0x574B4345u; // "ECKW"
inline constexpr std::uint32_t kWalVersion = 1;

/**
 * Borrowed bindings to the subsystems a checkpoint covers. sim, eco
 * and cluster are required; the rest may be null when the world runs
 * without them (no grid, no fault schedule, no transport front-end) —
 * presence is encoded, and restore requires the same shape.
 */
struct World
{
    sim::Simulation *sim = nullptr;
    core::Ecovisor *eco = nullptr;
    cop::Cluster *cluster = nullptr;
    energy::PhysicalEnergySystem *phys = nullptr;
    energy::GridConnection *grid = nullptr;
    net::ServerCore *server = nullptr;
    fault::FaultInjector *injector = nullptr;
};

/** Decoded snapshot, held as images until applied. */
struct Snapshot
{
    std::int64_t tick = 0; ///< clock tick count at capture
    TimeS now_s = 0;       ///< clock time at capture
    cop::ClusterImage cluster;
    core::EcovisorImage eco;
    bool has_phys_battery = false;
    double phys_battery_wh = 0.0;
    bool has_grid = false;
    double grid_energy_wh = 0.0;
    double grid_carbon_g = 0.0;
    std::int64_t injector_armed_ticks = 0;
    bool has_server = false;
    net::ServerCoreImage server;
};

/** One tick's WAL record. */
struct TickRecord
{
    std::int64_t tick = 0; ///< clock tick count when applied
    TimeS start_s = 0;     ///< tick start time
    std::vector<net::SessionEvent> events; ///< occurrence order
    std::vector<net::ServerCore::PendingOp> ops; ///< canonical order
};

/** Capture the world into a Snapshot (tick-boundary only). */
Snapshot captureSnapshot(const World &w);

/** Encode / decode the snapshot payload. Decode returns DataLoss on
 *  bad magic, unknown version, or malformed structure. */
void encodeSnapshot(std::vector<std::uint8_t> &out, const Snapshot &s);
api::Status decodeSnapshot(const std::vector<std::uint8_t> &payload,
                           Snapshot *out);

/**
 * Apply a snapshot to a freshly constructed world (same configs, no
 * apps registered). Restores cluster first, then the ecovisor (which
 * re-interns against it), then energy/fault/session state, then the
 * clock. Returns DataLoss when the snapshot's shape does not match
 * the world (e.g. a grid-less world restoring a grid snapshot).
 */
api::Status applySnapshot(const World &w, const Snapshot &s);

/** Encode / decode one WAL record payload. */
void encodeTickRecord(std::vector<std::uint8_t> &out,
                      const TickRecord &r);
api::Status decodeTickRecord(const std::vector<std::uint8_t> &payload,
                             TickRecord *out);

/**
 * FNV-1a 64 digest of the world's current snapshot encoding — the
 * full-state fingerprint the equivalence tests (and ci/server_smoke)
 * compare between an uninterrupted run and a crashed-and-recovered
 * one. Bit-identical state <=> equal digests, by construction: the
 * digest hashes the same canonical encoding the snapshot persists.
 */
std::uint64_t snapshotDigest(const World &w);

} // namespace ecov::ckpt

#endif // ECOV_CKPT_SNAPSHOT_H
