/**
 * @file
 * Quickstart: the smallest complete ecovisor program, written against
 * the v2 handle surface.
 *
 * Builds a 4-node cluster with a grid connection, a solar array and a
 * battery; registers one application with a share of each (receiving
 * an api::AppHandle — the name is resolved exactly once); runs one
 * simulated day with a tick() callback that reads the whole Table 1
 * getter set through a single batched EnergySnapshot and reacts to
 * carbon intensity. Every v2 call returns api::Status / api::Result
 * instead of aborting on misuse.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "carbon/region_traces.h"
#include "core/ecovisor.h"
#include "energy/solar_array.h"
#include "sim/simulation.h"

using namespace ecov;

int
main()
{
    // --- physical energy system -------------------------------------
    // Carbon signal: a synthetic California-like day (5 min samples).
    auto signal = carbon::makeRegionTrace(carbon::californiaProfile(),
                                          /*days=*/1, /*seed=*/7);
    energy::GridConnection grid(&signal);

    // Solar: 400 W peak, light clouds.
    energy::SolarTraceConfig solar_cfg;
    solar_cfg.peak_w = 400.0;
    solar_cfg.cloudiness = 0.2;
    auto solar = energy::makeSolarTrace(solar_cfg, 7);

    // Battery: the paper's 1440 Wh bank (0.25C charge, 1C discharge,
    // 30 % SOC floor).
    energy::BatteryConfig battery;

    // --- computing system --------------------------------------------
    // Four quad-core microservers (1.35 W idle, 5 W at 100 % CPU).
    cop::Cluster cluster(4, power::ServerPowerConfig{});
    energy::PhysicalEnergySystem phys(&grid, &solar, battery);

    // --- the ecovisor --------------------------------------------------
    core::Ecovisor eco(&cluster, &phys);

    // One application owning the whole energy system. tryAddApp
    // validates the share and returns the app's handle; a rejected
    // share would come back as a structured error, not a crash.
    core::AppShareConfig share;
    share.solar_fraction = 1.0;
    share.battery = battery;
    auto registered = eco.tryAddApp("myapp", share);
    if (!registered.ok()) {
        std::fprintf(stderr, "addApp failed: %s\n",
                     registered.status().message().c_str());
        return 1;
    }
    const api::AppHandle myapp = registered.value();

    // Two containers for the app.
    auto c1 = cluster.createContainer("myapp", 2.0);
    auto c2 = cluster.createContainer("myapp", 2.0);
    cluster.setDemand(*c1, 0.9);
    cluster.setDemand(*c2, 0.6);
    const api::ContainerHandle cap_target = api::handleOf(cluster, *c2);

    // The application's tick() upcall: carbon-aware power capping.
    // One EnergySnapshot per tick replaces four scalar getter calls.
    eco.registerTickCallback(myapp, [&](TimeS t, TimeS) {
           const api::EnergySnapshot s =
               eco.getEnergySnapshot(myapp).value();
           // When the grid is dirty and solar is low, cap container 2
           // to 1 W; otherwise let it run free.
           if (s.grid_carbon_g_per_kwh > 250.0 && s.solar_w < 50.0)
               eco.setContainerPowercap(cap_target, 1.0).orFatal();
           else
               eco.setContainerPowercap(cap_target, core::kUnlimitedW)
                   .orFatal();
           // Opportunistic carbon arbitrage: charge the battery from
           // the grid while it is clean.
           eco.setBatteryChargeRate(
                  myapp, s.grid_carbon_g_per_kwh < 150.0 ? 100.0 : 0.0)
               .orFatal();
           if (t % 900 == 0) {
               std::printf("t=%5lldmin carbon=%6.1f g/kWh solar=%6.1f W "
                           "battery=%7.1f Wh grid=%5.2f W\n",
                           static_cast<long long>(t / 60),
                           s.grid_carbon_g_per_kwh, s.solar_w,
                           s.battery_charge_level_wh, s.grid_w);
           }
       })
        .orFatal();

    // --- run one simulated day ------------------------------------------
    sim::Simulation simul(/*tick_interval_s=*/60);
    eco.attach(simul);
    simul.runUntil(24 * 3600);

    const auto &ves = *eco.ves(myapp);
    std::printf("\nAfter 24 h: energy=%.1f Wh (grid %.1f Wh, solar "
                "%.1f Wh), carbon=%.2f gCO2\n",
                ves.totalEnergyWh(), ves.totalGridWh(),
                ves.totalSolarWh(), ves.totalCarbonG());
    return 0;
}
