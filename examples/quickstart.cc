/**
 * @file
 * Quickstart: the smallest complete ecovisor program.
 *
 * Builds a 4-node cluster with a grid connection, a solar array and a
 * battery; registers one application with a share of each; runs one
 * simulated hour with a tick() callback that reads the virtual energy
 * system through the Table 1 API and reacts to carbon intensity.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "carbon/region_traces.h"
#include "core/ecovisor.h"
#include "energy/solar_array.h"
#include "sim/simulation.h"

using namespace ecov;

int
main()
{
    // --- physical energy system -------------------------------------
    // Carbon signal: a synthetic California-like day (5 min samples).
    auto signal = carbon::makeRegionTrace(carbon::californiaProfile(),
                                          /*days=*/1, /*seed=*/7);
    energy::GridConnection grid(&signal);

    // Solar: 400 W peak, light clouds.
    energy::SolarTraceConfig solar_cfg;
    solar_cfg.peak_w = 400.0;
    solar_cfg.cloudiness = 0.2;
    auto solar = energy::makeSolarTrace(solar_cfg, 7);

    // Battery: the paper's 1440 Wh bank (0.25C charge, 1C discharge,
    // 30 % SOC floor).
    energy::BatteryConfig battery;

    // --- computing system --------------------------------------------
    // Four quad-core microservers (1.35 W idle, 5 W at 100 % CPU).
    cop::Cluster cluster(4, power::ServerPowerConfig{});
    energy::PhysicalEnergySystem phys(&grid, &solar, battery);

    // --- the ecovisor --------------------------------------------------
    core::Ecovisor eco(&cluster, &phys);

    // One application owning the whole energy system.
    core::AppShareConfig share;
    share.solar_fraction = 1.0;
    share.battery = battery;
    eco.addApp("myapp", share);

    // Two containers for the app.
    auto c1 = cluster.createContainer("myapp", 2.0);
    auto c2 = cluster.createContainer("myapp", 2.0);
    cluster.setDemand(*c1, 0.9);
    cluster.setDemand(*c2, 0.6);

    // The application's tick() upcall: carbon-aware power capping.
    eco.registerTickCallback("myapp", [&](TimeS t, TimeS) {
        double carbon = eco.getGridCarbon();   // gCO2/kWh
        double solar_w = eco.getSolarPower("myapp");
        // When the grid is dirty and solar is low, cap container 2
        // to 1 W; otherwise let it run free.
        if (carbon > 250.0 && solar_w < 50.0)
            eco.setContainerPowercap(*c2, 1.0);
        else
            eco.setContainerPowercap(*c2, core::kUnlimitedW);
        // Opportunistic carbon arbitrage: charge the battery from the
        // grid while it is clean.
        eco.setBatteryChargeRate("myapp", carbon < 150.0 ? 100.0 : 0.0);
        if (t % 900 == 0) {
            std::printf("t=%5lldmin carbon=%6.1f g/kWh solar=%6.1f W "
                        "battery=%7.1f Wh grid=%5.2f W\n",
                        static_cast<long long>(t / 60), carbon, solar_w,
                        eco.getBatteryChargeLevel("myapp"),
                        eco.getGridPower("myapp"));
        }
    });

    // --- run one simulated day ------------------------------------------
    sim::Simulation simul(/*tick_interval_s=*/60);
    eco.attach(simul);
    simul.runUntil(24 * 3600);

    const auto &ves = eco.ves("myapp");
    std::printf("\nAfter 24 h: energy=%.1f Wh (grid %.1f Wh, solar "
                "%.1f Wh), carbon=%.2f gCO2\n",
                ves.totalEnergyWh(), ves.totalGridWh(),
                ves.totalSolarWh(), ves.totalCarbonG());
    return 0;
}
