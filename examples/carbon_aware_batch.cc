/**
 * @file
 * Example: carbon-aware batch processing with Wait&Scale.
 *
 * Runs an elastic ML-training-style job three ways — carbon-agnostic,
 * system-level suspend-resume (WaitAWhile) and the application-
 * specific Wait&Scale policy — on a CAISO-like carbon signal and
 * prints the carbon/runtime trade-off each achieves (the Section 5.1
 * case study, as a library user would write it).
 */

#include <cstdio>
#include <memory>

#include "carbon/region_traces.h"
#include "core/ecovisor.h"
#include "policies/carbon_reduction.h"
#include "sim/simulation.h"
#include "workloads/batch_job.h"

using namespace ecov;

namespace {

struct Outcome
{
    double runtime_h;
    double carbon_g;
};

Outcome
runOnce(int policy_kind, double scale)
{
    auto signal = carbon::makeCaisoLikeTrace(6, 3);
    energy::GridConnection grid(&signal);
    cop::Cluster cluster(16, power::ServerPowerConfig{});
    energy::PhysicalEnergySystem phys(&grid, nullptr, std::nullopt);
    core::Ecovisor eco(&cluster, &phys);
    const api::AppHandle train_h =
        eco.tryAddApp("train", core::AppShareConfig{}).value();

    // A 4-worker training job with synchronization overhead.
    auto cfg = wl::mlTrainingConfig("train", 4.0 * 6.0 * 3600.0);
    wl::BatchJob job(&cluster, cfg);

    double threshold = signal.intensityPercentile(30.0, 0, 48 * 3600);
    std::unique_ptr<policy::BatchPolicy> pol;
    if (policy_kind == 0)
        pol = std::make_unique<policy::CarbonAgnosticPolicy>(&eco, &job);
    else if (policy_kind == 1)
        pol = std::make_unique<policy::SuspendResumePolicy>(&eco, &job,
                                                            threshold);
    else
        pol = std::make_unique<policy::WaitAndScalePolicy>(
            &eco, &job, threshold, scale);

    sim::Simulation simul(60);
    simul.addListener([&](TimeS t, TimeS dt) { pol->onTick(t, dt); },
                      sim::TickPhase::Policy);
    simul.addListener([&](TimeS t, TimeS dt) { job.onTick(t, dt); },
                      sim::TickPhase::Workload);
    eco.attach(simul);

    job.start(0);
    while (!job.done() && simul.now() < 20LL * 24 * 3600)
        simul.step();

    return Outcome{static_cast<double>(job.runtime()) / 3600.0,
                   eco.ves(train_h)->totalCarbonG()};
}

} // namespace

int
main()
{
    std::printf("Carbon-aware batch processing with an ecovisor\n");
    std::printf("----------------------------------------------\n\n");

    auto agnostic = runOnce(0, 1.0);
    std::printf("carbon-agnostic   : %5.1f h, %6.2f gCO2\n",
                agnostic.runtime_h, agnostic.carbon_g);

    auto suspend = runOnce(1, 1.0);
    std::printf("suspend-resume    : %5.1f h, %6.2f gCO2 "
                "(system-level WaitAWhile)\n",
                suspend.runtime_h, suspend.carbon_g);

    for (double scale : {2.0, 3.0}) {
        auto ws = runOnce(2, scale);
        std::printf("wait&scale (%.0fx)   : %5.1f h, %6.2f gCO2\n",
                    scale, ws.runtime_h, ws.carbon_g);
    }

    std::printf("\nThe application-specific Wait&Scale policy recovers "
                "most of suspend-resume's runtime penalty at a similar "
                "carbon saving; pushing the scale factor past the "
                "job's sweet spot stops helping (synchronization "
                "overhead).\n");
    return 0;
}
