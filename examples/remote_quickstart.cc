/**
 * @file
 * Remote quickstart: the quickstart workload driven over TCP against
 * a running `ecovisord` — the same register/spawn/cap/snapshot flow,
 * but through net::Client instead of linking the ecovisor in-process
 * (docs/ECOVISORD.md).
 *
 * Run a daemon, then point this at it:
 *   ./build/src/net/ecovisord --port=7447 &
 *   ./build/examples/remote_quickstart 7447
 *
 * With --inject-protocol-error the example instead sends garbage
 * bytes mid-session and exits 2 once the server, as it must, answers
 * with a ProtocolError frame and closes the connection (the CI
 * server-smoke job asserts this nonzero exit). Exit codes: 0 normal
 * success, 1 failure, 2 protocol error observed as intended.
 *
 * With --chaos the example becomes a fault-tolerant tenant
 * (docs/FAULTS.md): per-call deadlines, a session lease via
 * beginSession(), and a recovery loop that survives both flaky
 * transport and a daemon kill-and-restart. Any failed call triggers
 * reconnect with capped exponential backoff, then resume() — which
 * retransmits unacknowledged mutations into the server's dedup
 * window — and, when the lease is gone (expired, or a restarted
 * daemon that never saw it), abandonSession() and re-registration
 * under an incarnation-suffixed name. Mid-run it also drops its own
 * connection once to force the resume path even against a healthy
 * daemon. Reconnects draw on one global backoff budget (capped delay,
 * jitter deterministic in --seed), so a permanently-dead daemon
 * exhausts it and the tenant exits nonzero rather than spinning
 * forever. Exits 0 only if the full iteration budget completes.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <unistd.h>

#include "net/client.h"
#include "net/socket.h"
#include "util/rng.h"

using namespace ecov;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s <port> [host] [--inject-protocol-error] "
                 "[--chaos] [--seed=N]\n",
                 argv0);
    return 64;
}

/**
 * Reconnect policy for the chaos tenant: capped exponential backoff
 * with deterministic jitter (pure function of --seed, so two runs of
 * the chaos leg hammer the daemon at the same instants), and a
 * *global* attempt budget across the whole run — a permanently-dead
 * daemon exhausts it and the tenant exits nonzero instead of spinning
 * forever.
 */
class Backoff
{
  public:
    explicit Backoff(std::uint64_t seed) : rng_(seed) {}

    /** True while attempts remain; sleeps the jittered delay. */
    bool
    next()
    {
        if (spent_ >= kBudget)
            return false;
        ++spent_;
        // Full jitter on [delay/2, delay): desynchronises competing
        // tenants without ever exceeding the cap.
        const double jittered =
            rng_.uniform(delay_ms_ / 2.0, static_cast<double>(delay_ms_));
        ::usleep(static_cast<useconds_t>(jittered * 1000.0));
        delay_ms_ = delay_ms_ * 2 > kMaxDelayMs ? kMaxDelayMs
                                                : delay_ms_ * 2;
        return true;
    }

    /** A healthy call landed: restart the delay ramp (the budget, by
     *  design, does not refill — it bounds the whole run). */
    void reset() { delay_ms_ = kBaseDelayMs; }

    int spent() const { return spent_; }

  private:
    static constexpr int kBudget = 48;      ///< total attempts per run
    static constexpr int kBaseDelayMs = 25; ///< first retry delay
    static constexpr int kMaxDelayMs = 800; ///< delay ceiling

    Rng rng_;
    int delay_ms_ = kBaseDelayMs;
    int spent_ = 0;
};

/** Connect, retrying on the shared backoff budget; null when spent. */
std::unique_ptr<net::SocketTransport>
connectWithBackoff(const std::string &host, std::uint16_t port,
                   Backoff &backoff)
{
    for (;;) {
        auto t = net::SocketTransport::connect(host, port);
        if (t.ok())
            return std::move(t.value());
        if (!backoff.next())
            return nullptr; // budget exhausted: daemon presumed dead
    }
}

/** The chaos tenant: survive anything, finish the loop, exit 0. */
int
runChaos(const std::string &host, std::uint16_t port,
         std::uint64_t seed)
{
    Backoff backoff(seed);
    auto transport = connectWithBackoff(host, port, backoff);
    if (!transport) {
        std::fprintf(stderr, "chaos: could not reach daemon\n");
        return 1;
    }
    net::Client client(transport.get());
    client.setCallTimeout(2000);

    char base[32];
    std::snprintf(base, sizeof base, "rqc-%d",
                  static_cast<int>(::getpid()));
    int incarnation = 0;
    net::RemoteApp app{0};
    net::RemoteContainer cont{0};
    int resumes = 0;
    int reregisters = 0;

    // (Re)establish a working session: fresh lease, registration
    // keyed by incarnation so a restarted daemon never sees a
    // name collision with our earlier life.
    const auto enroll = [&]() -> bool {
        (void)client.beginSession();
        char name[48];
        std::snprintf(name, sizeof name, "%s#%d", base, incarnation);
        ++incarnation;
        auto a = client.registerApp(name, core::AppShareConfig{});
        if (!a.ok())
            return false;
        auto c = client.spawnContainer(a.value(), 1.0);
        if (!c.ok())
            return false;
        app = a.value();
        cont = c.value();
        return client.setDemand(cont, 0.8).ok();
    };

    // Recover from any failed call: reconnect (the daemon itself may
    // be mid-restart), then prefer resume() — same handles, unacked
    // mutations retransmitted — and fall back to a fresh enrolment.
    const auto recover = [&]() -> bool {
        for (;;) {
            transport = connectWithBackoff(host, port, backoff);
            if (!transport)
                return false; // reconnect budget exhausted
            client.bindTransport(transport.get());
            if (client.resume().ok()) {
                ++resumes;
                backoff.reset();
                return true;
            }
            client.abandonSession();
            if (enroll()) {
                ++reregisters;
                backoff.reset();
                return true;
            }
            // Enrolment raced another daemon death; the next connect
            // draws down the same global budget, so this terminates.
            if (!backoff.next())
                return false;
        }
    };

    if (!enroll() && !recover()) {
        std::fprintf(stderr, "chaos: could not enroll\n");
        return 1;
    }

    constexpr int kIters = 30;
    for (int i = 0; i < kIters; ++i) {
        if (i == kIters / 2) {
            // Self-inflicted network fault: drop our own connection
            // so the resume path runs even if the daemon stays up.
            transport.reset();
            if (!recover()) {
                std::fprintf(stderr, "chaos: recovery failed\n");
                return 1;
            }
        }
        auto snap = client.getEnergySnapshot(app);
        if (!snap.ok()) {
            if (!recover()) {
                std::fprintf(stderr,
                             "chaos: recovery failed at iter %d: %s\n",
                             i, snap.status().message().c_str());
                return 1;
            }
            --i; // retry this iteration on the recovered session
            continue;
        }
        if (!client.setDemand(cont, 0.2 + 0.02 * i).ok() &&
            !recover()) {
            std::fprintf(stderr, "chaos: recovery failed\n");
            return 1;
        }
        ::usleep(10'000);
    }

    std::printf("chaos survived: %d iters, %d resume(s), %d "
                "re-registration(s), incarnation %d, %d backoff "
                "attempt(s)\n",
                kIters, resumes, reregisters, incarnation - 1,
                backoff.spent());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint16_t port = 0;
    std::string host = "127.0.0.1";
    bool inject_error = false;
    bool chaos = false;
    std::uint64_t seed = 1;
    int positional = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--inject-protocol-error") == 0) {
            inject_error = true;
        } else if (std::strcmp(argv[i], "--chaos") == 0) {
            chaos = true;
        } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
            seed = std::strtoull(argv[i] + 7, nullptr, 10);
        } else if (positional == 0) {
            const long p = std::strtol(argv[i], nullptr, 10);
            if (p <= 0 || p > 65535)
                return usage(argv[0]);
            port = static_cast<std::uint16_t>(p);
            ++positional;
        } else if (positional == 1) {
            host = argv[i];
            ++positional;
        } else {
            return usage(argv[0]);
        }
    }
    if (port == 0)
        return usage(argv[0]);

    if (chaos)
        return runChaos(host, port, seed);

    auto transport = net::SocketTransport::connect(host, port);
    if (!transport.ok()) {
        std::fprintf(stderr, "connect failed: %s\n",
                     transport.status().message().c_str());
        return 1;
    }
    net::Client client(transport.value().get());

    if (auto st = client.ping(); !st.ok()) {
        std::fprintf(stderr, "ping failed: %s\n",
                     st.message().c_str());
        return 1;
    }
    std::printf("connected to ecovisord at %s:%u\n", host.c_str(),
                port);

    if (inject_error) {
        // Deliberately break framing. The server must answer with a
        // ProtocolError frame and close the connection; the client
        // surfaces that as a latched Unavailable on the next call.
        const std::uint8_t garbage[] = {0xBA, 0xDF, 0x00, 0x0D,
                                        0xBA, 0xDF, 0x00, 0x0D,
                                        0xBA, 0xDF, 0x00, 0x0D};
        (void)transport.value()->send(garbage, sizeof garbage);
        const api::Status st = client.ping();
        if (st.ok()) {
            std::fprintf(stderr,
                         "server accepted garbage framing!\n");
            return 1;
        }
        std::printf("protocol error handled as expected: %s\n",
                    st.message().c_str());
        return 2;
    }

    // Tenant names are per-daemon unique; key by pid so reruns
    // against a long-lived daemon don't collide.
    char name[32];
    std::snprintf(name, sizeof name, "rq-%d",
                  static_cast<int>(::getpid()));

    // A share of solar plus a slice of virtual battery.
    core::AppShareConfig share;
    share.solar_fraction = 0.25;
    energy::BatteryConfig battery;
    battery.capacity_wh = 360.0;
    battery.max_charge_w = 90.0;
    battery.max_discharge_w = 360.0;
    battery.initial_soc = 0.5;
    share.battery = battery;

    // Mutating calls resolve at the daemon's next tick commit; the
    // sync client just blocks across that boundary.
    auto app = client.registerApp(name, share);
    if (!app.ok()) {
        std::fprintf(stderr, "registerApp failed: %s\n",
                     app.status().message().c_str());
        return 1;
    }
    auto c1 = client.spawnContainer(app.value(), 2.0);
    auto c2 = client.spawnContainer(app.value(), 2.0);
    if (!c1.ok() || !c2.ok()) {
        std::fprintf(stderr, "spawnContainer failed\n");
        return 1;
    }
    if (!client.setDemand(c1.value(), 0.9).ok() ||
        !client.setDemand(c2.value(), 0.6).ok()) {
        std::fprintf(stderr, "setDemand failed\n");
        return 1;
    }

    // Carbon-aware capping loop: snapshot (immediate), react (next
    // tick), exactly like the in-process quickstart's tick callback.
    for (int i = 0; i < 10; ++i) {
        auto snap = client.getEnergySnapshot(app.value());
        if (!snap.ok()) {
            std::fprintf(stderr, "getEnergySnapshot failed: %s\n",
                         snap.status().message().c_str());
            return 1;
        }
        const api::EnergySnapshot &s = snap.value();
        const double cap =
            s.grid_carbon_g_per_kwh > 250.0 && s.solar_w < 50.0
                ? 1.0
                : core::kUnlimitedW;
        std::vector<net::RemoteCap> caps{{c1.value(), cap},
                                         {c2.value(), cap}};
        if (auto st = client.applyCapBatch(caps); !st.ok()) {
            std::fprintf(stderr, "applyCapBatch failed: %s\n",
                         st.message().c_str());
            return 1;
        }
        if (auto st = client.setBatteryChargeRate(
                app.value(),
                s.grid_carbon_g_per_kwh < 150.0 ? 50.0 : 0.0);
            !st.ok()) {
            std::fprintf(stderr, "setBatteryChargeRate failed: %s\n",
                         st.message().c_str());
            return 1;
        }
        std::printf("iter=%d carbon=%6.1f g/kWh solar=%6.1f W "
                    "battery=%6.1f Wh grid=%5.2f W\n",
                    i, s.grid_carbon_g_per_kwh, s.solar_w,
                    s.battery_charge_level_wh, s.grid_w);
    }

    // Tear down one container explicitly; the other is revoked by
    // the disconnect when this process exits.
    if (auto st = client.destroyContainer(c2.value()); !st.ok()) {
        std::fprintf(stderr, "destroyContainer failed: %s\n",
                     st.message().c_str());
        return 1;
    }
    std::printf("remote quickstart complete\n");
    return 0;
}
