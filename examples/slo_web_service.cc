/**
 * @file
 * Example: an SLO-bound web service on a carbon budget.
 *
 * A latency-sensitive web service sets a total carbon budget through
 * the EcoLib library layer (Table 2) and autoscale its workers to its
 * p95 SLO, bursting past the average carbon rate when load and carbon
 * peak together — the Section 5.2 case study from a library user's
 * point of view.
 */

#include <cstdio>

#include "carbon/region_traces.h"
#include "core/ecolib.h"
#include "core/ecovisor.h"
#include "policies/carbon_budget.h"
#include "sim/simulation.h"
#include "workloads/web_application.h"

using namespace ecov;

int
main()
{
    std::printf("SLO-bound web service on a carbon budget\n");
    std::printf("----------------------------------------\n\n");

    auto signal = carbon::makeRegionTrace(carbon::californiaProfile(),
                                          2, 5);
    energy::GridConnection grid(&signal);
    cop::Cluster cluster(32, power::ServerPowerConfig{});
    energy::PhysicalEnergySystem phys(&grid, nullptr, std::nullopt);
    core::Ecovisor eco(&cluster, &phys);
    eco.tryAddApp("shop", core::AppShareConfig{}).value();

    // EcoLib gives the app interval queries, budget tracking and
    // carbon-change notifications on top of the narrow API.
    core::EcoLib lib(&eco, "shop");
    int carbon_alerts = 0;
    lib.notifyCarbonChange([&](double, double) { ++carbon_alerts; },
                           0.25);

    auto trace = wl::makeRequestTrace(wl::webApp1Workload(), 5);
    wl::WebAppConfig wc;
    wc.app = "shop";
    wc.slo_p95_ms = 60.0;
    wc.max_workers = 32;
    wl::WebApplication app(&cluster, &trace, wc);

    const double rate_g_s = 0.35e-3;
    const TimeS horizon = 2 * 24 * 3600;
    lib.setCarbonBudget(rate_g_s * horizon);
    policy::DynamicCarbonBudgetPolicy policy(&eco, &app, rate_g_s,
                                             horizon);

    sim::Simulation simul(60);
    simul.addListener([&](TimeS t, TimeS dt) { policy.onTick(t, dt); },
                      sim::TickPhase::Policy);
    simul.addListener([&](TimeS t, TimeS dt) { app.onTick(t, dt); },
                      sim::TickPhase::Workload);
    eco.attach(simul);

    app.start(4);
    simul.runUntil(horizon);

    std::printf("48 h summary:\n");
    std::printf("  p95 SLO violations : %d ticks (of %lld)\n",
                app.sloViolations(),
                static_cast<long long>(horizon / 60));
    std::printf("  carbon used        : %.2f g of %.2f g budget\n",
                lib.getAppCarbonG(), policy.budgetG());
    std::printf("  budget remaining   : %.2f g\n",
                lib.carbonBudgetRemaining());
    std::printf("  energy (interval)  : %.1f Wh over the first day\n",
                lib.getAppEnergyWh(0, 24 * 3600));
    std::printf("  carbon alerts      : %d (>25%% intensity swings)\n",
                carbon_alerts);
    std::printf("\nThe budget policy provisions only what the SLO "
                "needs, banks credits in clean/quiet hours, and spends "
                "them to ride out dirty peaks without violating the "
                "SLO.\n");
    return 0;
}
