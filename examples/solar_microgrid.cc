/**
 * @file
 * Example: a zero-carbon edge microgrid (solar + battery, no grid
 * dependence for compute).
 *
 * Two tenants — a checkpointing Spark job and a day-time monitoring
 * web service — share a solar array and a physical battery through
 * their virtual energy systems, each running its own battery policy
 * (the Section 5.3 case study). Demonstrates addApp shares, virtual
 * battery control, and the multiplexing invariant (aggregate virtual
 * state mirrors the physical bank).
 */

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "carbon/carbon_signal.h"
#include "util/rng.h"
#include "core/ecovisor.h"
#include "energy/solar_array.h"
#include "policies/battery_policies.h"
#include "sim/simulation.h"
#include "workloads/spark_job.h"
#include "workloads/web_application.h"

using namespace ecov;

int
main()
{
    std::printf("Zero-carbon edge microgrid: Spark + monitoring "
                "service on shared solar/battery\n");
    std::printf("------------------------------------------------"
                "----------------------------\n\n");

    carbon::TraceCarbonSignal signal({{0, 250.0}});
    energy::GridConnection grid(&signal);

    energy::SolarTraceConfig sc;
    sc.peak_w = 80.0;
    sc.cloudiness = 0.25;
    sc.days = 3;
    auto solar = energy::makeSolarTrace(sc, 23);

    cop::Cluster cluster(32, power::ServerPowerConfig{});
    energy::BatteryConfig bank;
    bank.capacity_wh = 400.0;
    bank.max_charge_w = 100.0;
    bank.max_discharge_w = 400.0;
    energy::PhysicalEnergySystem phys(&grid, &solar, bank);
    core::Ecovisor eco(&cluster, &phys);

    // Split the microgrid 50/50 between the tenants.
    auto half_share = [] {
        core::AppShareConfig s;
        s.solar_fraction = 0.5;
        energy::BatteryConfig b;
        b.capacity_wh = 200.0;
        b.max_charge_w = 50.0;
        b.max_discharge_w = 200.0;
        b.initial_soc = 0.6;
        s.battery = b;
        return s;
    };
    const api::AppHandle spark_h =
        eco.tryAddApp("spark", half_share()).value();
    const api::AppHandle monitor_h =
        eco.tryAddApp("monitor", half_share()).value();

    wl::SparkJobConfig jc;
    jc.app = "spark";
    jc.total_work = 10.0 * 10.0 * 3600.0;
    jc.checkpoint_interval_s = 900;
    jc.max_workers = 48;
    wl::SparkJob spark(&cluster, jc);

    // The monitoring workload exists only while the sun shines (it
    // logs solar generation), so build a day-only trace.
    std::vector<wl::RequestTrace::Point> pts;
    {
        Rng rng(23);
        for (TimeS t = 0; t < 3 * 24 * 3600; t += 60) {
            double hour = static_cast<double>(t % (24 * 3600)) / 3600.0;
            double rate = 0.2;
            if (hour > 6.5 && hour < 17.5) {
                double x = (hour - 6.5) / 11.0;
                rate = std::max(0.2, 190.0 * std::sin(x * 3.14159265) +
                                         rng.gaussian(0.0, 10.0));
            }
            pts.push_back({t, rate});
        }
    }
    wl::RequestTrace trace(std::move(pts), 3 * 24 * 3600);
    wl::WebAppConfig wc;
    wc.app = "monitor";
    wc.slo_p95_ms = 100.0;
    wc.max_workers = 24;
    wl::WebApplication monitor(&cluster, &trace, wc);

    policy::BatteryPolicyConfig pc;
    pc.guaranteed_power_w = 5.0;
    pc.per_worker_w = 1.25;
    policy::DynamicSparkBatteryPolicy spark_policy(&eco, &spark, pc);
    policy::DynamicWebBatteryPolicy web_policy(&eco, &monitor, pc);

    sim::Simulation simul(60);
    simul.addListener(
        [&](TimeS t, TimeS dt) {
            if (!spark.done())
                spark_policy.onTick(t, dt);
            web_policy.onTick(t, dt);
        },
        sim::TickPhase::Policy);
    simul.addListener(
        [&](TimeS t, TimeS dt) {
            spark.onTick(t, dt);
            monitor.onTick(t, dt);
        },
        sim::TickPhase::Workload);
    eco.attach(simul);
    // Hourly console report.
    simul.addListener(
        [&](TimeS t, TimeS) {
            if (t % (6 * 3600) != 0)
                return;
            std::printf("t=%3lldh solar=%5.1fW spark{w=%2d soc=%3.0f%%} "
                        "monitor{w=%2d soc=%3.0f%% p95=%5.1fms}\n",
                        static_cast<long long>(t / 3600),
                        eco.getSolarPower(spark_h).value() +
                            eco.getSolarPower(monitor_h).value(),
                        spark.workers(),
                        eco.ves(spark_h)->battery().soc() * 100.0,
                        monitor.workers(),
                        eco.ves(monitor_h)->battery().soc() * 100.0,
                        monitor.lastP95Ms());
        },
        sim::TickPhase::Telemetry);

    spark.start(0);
    monitor.start(1);
    simul.runUntil(3 * 24 * 3600);

    std::printf("\nAfter 3 days:\n");
    std::printf("  spark: %s (%.0f%% done), lost-to-kills %.0f "
                "worker-s\n",
                spark.done() ? "finished" : "running",
                spark.progress() * 100.0, spark.lostWork());
    std::printf("  monitor: %d SLO violations\n",
                monitor.sloViolations());
    double grid_wh = eco.ves(spark_h)->totalGridWh() +
                     eco.ves(monitor_h)->totalGridWh();
    std::printf("  grid energy used: %.2f Wh (zero-carbon check)\n",
                grid_wh);
    std::printf("  physical battery mirrors virtual aggregate: "
                "%.1f Wh == %.1f Wh\n",
                phys.battery().energyWh(), eco.aggregateBatteryWh());
    return 0;
}
