/**
 * @file
 * Example: geo-distributed carbon shifting across three sites.
 *
 * A delay-tolerant batch job is deployed at three sites whose grids
 * have very different carbon profiles (Ontario-, Uruguay- and
 * California-like). The GeoShiftPolicy — built entirely on each
 * site's narrow ecovisor API — migrates the job toward the cleanest
 * grid, paying a checkpoint/restart cost per move (the geo-distributed
 * library policy Section 3.2 sketches).
 */

#include <cstdio>

#include "carbon/region_traces.h"
#include "core/ecovisor.h"
#include "geo/geo_batch_job.h"
#include "sim/simulation.h"

using namespace ecov;

namespace {

struct SiteRig
{
    carbon::TraceCarbonSignal signal;
    energy::GridConnection grid;
    cop::Cluster cluster;
    energy::PhysicalEnergySystem phys;
    core::Ecovisor eco;

    SiteRig(const carbon::RegionProfile &profile, std::uint64_t seed)
        : signal(carbon::makeRegionTrace(profile, 3, seed)),
          grid(&signal), cluster(8, power::ServerPowerConfig{}),
          phys(&grid, nullptr, std::nullopt), eco(&cluster, &phys)
    {
        eco.tryAddApp("job", core::AppShareConfig{}).value();
    }
};

} // namespace

int
main()
{
    std::printf("Geo-distributed carbon shifting\n");
    std::printf("-------------------------------\n\n");

    SiteRig ontario(carbon::ontarioProfile(), 12);
    SiteRig uruguay(carbon::uruguayProfile(), 13);
    SiteRig california(carbon::californiaProfile(), 14);

    geo::GeoCoordinator coord(
        {{"ontario", &ontario.eco, "job"},
         {"uruguay", &uruguay.eco, "job"},
         {"california", &california.eco, "job"}});

    geo::GeoBatchJobConfig jc;
    jc.total_work = 4.0 * 8.0 * 3600.0; // 8 h of work on 4 workers
    jc.workers = 4;
    jc.migration_delay_s = 600; // checkpoint + transfer + restart
    geo::GeoBatchJob job(&coord, jc);
    geo::GeoShiftPolicy policy(&coord, &job, /*hysteresis=*/25.0);

    sim::Simulation simul(60);
    simul.addListener([&](TimeS t, TimeS dt) { policy.onTick(t, dt); },
                      sim::TickPhase::Policy);
    simul.addListener([&](TimeS t, TimeS dt) { job.onTick(t, dt); },
                      sim::TickPhase::Workload);
    ontario.eco.attach(simul);
    uruguay.eco.attach(simul);
    california.eco.attach(simul);

    // Start at the *dirtiest* site to show the policy recovering.
    job.start(0, 2);
    int last_site = job.activeSite();
    std::printf("t=  0h starting at %s\n",
                coord.site(last_site).name.c_str());
    while (!job.done() && simul.now() < 3LL * 24 * 3600) {
        simul.step();
        if (job.activeSite() != last_site) {
            last_site = job.activeSite();
            std::printf("t=%3lldh migrated to %-10s (%.0f gCO2/kWh "
                        "vs %.0f at origin)\n",
                        static_cast<long long>(simul.now() / 3600),
                        coord.site(last_site).name.c_str(),
                        coord.carbonAt(last_site), coord.carbonAt(2));
        }
    }

    std::printf("\nDone: runtime %.1f h, %d migrations, %.2f gCO2 "
                "total.\n",
                static_cast<double>(job.runtime()) / 3600.0,
                job.migrations(), coord.totalCarbonG());
    std::printf("A job pinned to California would have emitted "
                "roughly the California-intensity multiple of the "
                "same energy; see bench/ablation_geo_shift for the "
                "full comparison.\n");
    return 0;
}
