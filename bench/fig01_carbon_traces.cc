/**
 * @file
 * Figure 1 reproduction: grid carbon intensity for three regions
 * (Ontario, California, Uruguay) over four days, showing spatial and
 * temporal variation. Prints summary statistics and an hourly series.
 */

#include <cstdio>

#include "carbon/region_traces.h"
#include "util/stats.h"
#include "util/table.h"

using namespace ecov;

int
main()
{
    std::printf("=== Figure 1: grid carbon intensity by region "
                "(gCO2/kWh) ===\n\n");

    struct Region
    {
        const char *name;
        carbon::RegionProfile profile;
    };
    const Region regions[] = {
        {"Ontario, Canada", carbon::ontarioProfile()},
        {"California", carbon::californiaProfile()},
        {"Uruguay", carbon::uruguayProfile()},
    };

    std::vector<carbon::TraceCarbonSignal> traces;
    for (const auto &r : regions)
        traces.push_back(carbon::makeRegionTrace(r.profile, 4, 42));

    TextTable summary({"region", "mean", "stddev", "min", "max"});
    for (std::size_t i = 0; i < traces.size(); ++i) {
        RunningStats st;
        for (const auto &p : traces[i].points())
            st.add(p.intensity_g_per_kwh);
        summary.addRow({regions[i].name, TextTable::fmt(st.mean(), 1),
                        TextTable::fmt(st.stddev(), 1),
                        TextTable::fmt(st.min(), 1),
                        TextTable::fmt(st.max(), 1)});
    }
    summary.print();

    std::printf("\nHourly series over 4 days "
                "(time_h,ontario,california,uruguay):\n");
    CsvWriter csv(stdout, {"time_h", "ontario", "california", "uruguay"});
    for (TimeS t = 0; t < 4 * 24 * 3600; t += 3600) {
        csv.row({static_cast<double>(t) / 3600.0,
                 traces[0].intensityAt(t), traces[1].intensityAt(t),
                 traces[2].intensityAt(t)});
    }

    std::printf("\nPaper shape check: Ontario lowest & flattest "
                "(nuclear), Uruguay mid (hydro), California highest "
                "mean and variance (fossil + solar duck curve).\n");
    return 0;
}
