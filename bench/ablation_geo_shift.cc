/**
 * @file
 * Ablation / extension: geo-distributed carbon shifting (Section 3.2
 * sketches it; the conclusion lists inter-cluster coordination as
 * future work).
 *
 * A batch job deployed at three region-like sites (Ontario-, Uruguay-
 * and California-shaped carbon signals) either stays pinned at one
 * site or follows the GeoShiftPolicy to the lowest-carbon site, with
 * checkpoint/restart migrations. Reports carbon, runtime and
 * migration counts.
 */

#include <cstdio>

#include "carbon/region_traces.h"
#include "core/ecovisor.h"
#include "geo/geo_batch_job.h"
#include "sim/simulation.h"
#include "util/table.h"

using namespace ecov;

namespace {

/** One self-contained site. */
struct SiteRig
{
    carbon::TraceCarbonSignal signal;
    energy::GridConnection grid;
    cop::Cluster cluster;
    energy::PhysicalEnergySystem phys;
    core::Ecovisor eco;

    SiteRig(const carbon::RegionProfile &profile, std::uint64_t seed)
        : signal(carbon::makeRegionTrace(profile, 4, seed)),
          grid(&signal),
          cluster(8, power::ServerPowerConfig{}),
          phys(&grid, nullptr, std::nullopt), eco(&cluster, &phys)
    {
        eco.addApp("job", core::AppShareConfig{});
    }
};

struct Outcome
{
    double carbon_g;
    double runtime_h;
    int migrations;
};

Outcome
runWith(bool shift, int pinned_site)
{
    SiteRig ontario(carbon::ontarioProfile(), 2);
    SiteRig uruguay(carbon::uruguayProfile(), 3);
    SiteRig california(carbon::californiaProfile(), 4);
    geo::GeoCoordinator coord({{"ontario", &ontario.eco, "job"},
                               {"uruguay", &uruguay.eco, "job"},
                               {"california", &california.eco, "job"}});

    geo::GeoBatchJobConfig jc;
    jc.total_work = 4.0 * 12.0 * 3600.0; // 12 h at 4 workers
    jc.workers = 4;
    jc.migration_delay_s = 600;
    geo::GeoBatchJob job(&coord, jc);
    geo::GeoShiftPolicy policy(&coord, &job, 25.0);

    sim::Simulation simul(60);
    simul.addListener(
        [&](TimeS t, TimeS dt) {
            if (shift)
                policy.onTick(t, dt);
        },
        sim::TickPhase::Policy);
    simul.addListener([&](TimeS t, TimeS dt) { job.onTick(t, dt); },
                      sim::TickPhase::Workload);
    ontario.eco.attach(simul);
    uruguay.eco.attach(simul);
    california.eco.attach(simul);

    job.start(0, pinned_site);
    while (!job.done() && simul.now() < 4LL * 24 * 3600)
        simul.step();
    return Outcome{coord.totalCarbonG(),
                   static_cast<double>(job.runtime()) / 3600.0,
                   job.migrations()};
}

} // namespace

int
main()
{
    std::printf("=== Extension: geo-distributed carbon shifting "
                "(Section 3.2 / future work) ===\n\n");
    TextTable t({"deployment", "carbon_g", "runtime_h", "migrations"});
    const char *names[] = {"pinned: ontario", "pinned: uruguay",
                           "pinned: california"};
    for (int s = 0; s < 3; ++s) {
        auto o = runWith(false, s);
        t.addRow({names[s], TextTable::fmt(o.carbon_g, 2),
                  TextTable::fmt(o.runtime_h, 2),
                  std::to_string(o.migrations)});
    }
    auto shifted = runWith(true, 2); // start at the dirtiest site
    t.addRow({"geo-shift (start: california)",
              TextTable::fmt(shifted.carbon_g, 2),
              TextTable::fmt(shifted.runtime_h, 2),
              std::to_string(shifted.migrations)});
    t.print();
    std::printf(
        "\nExpected: geo-shift approaches the cleanest pinned site's "
        "carbon (Ontario) even when started at the dirtiest, at a "
        "small runtime cost from checkpoint/restart migrations.\n");
    return 0;
}
