/**
 * @file
 * Ablation: the tick interval delta-t (Section 3.1 discretizes power
 * and carbon over a small tick interval, e.g. one minute, and argues
 * minute-level ticks are fine because carbon does not change
 * significantly within a minute).
 *
 * Runs the suspend-resume batch scenario at several tick lengths and
 * compares carbon, runtime, and policy responsiveness. Coarser ticks
 * react later to threshold crossings, lengthening exposure to
 * high-carbon power.
 */

#include <cstdio>

#include "carbon/region_traces.h"
#include "core/ecovisor.h"
#include "policies/carbon_reduction.h"
#include "sim/simulation.h"
#include "util/table.h"
#include "workloads/batch_job.h"

using namespace ecov;

namespace {

struct Outcome
{
    double runtime_h;
    double carbon_g;
};

Outcome
runWith(TimeS tick_s)
{
    auto signal = carbon::makeCaisoLikeTrace(8, 11);
    energy::GridConnection grid(&signal);
    cop::Cluster cluster(16, power::ServerPowerConfig{});
    energy::PhysicalEnergySystem phys(&grid, nullptr, std::nullopt);
    core::Ecovisor eco(&cluster, &phys);
    eco.addApp("job", core::AppShareConfig{});

    auto cfg = wl::mlTrainingConfig("job", 4.0 * 5.0 * 3600.0);
    wl::BatchJob job(&cluster, cfg);
    double threshold = signal.intensityPercentile(30.0, 0, 48 * 3600);
    policy::SuspendResumePolicy pol(&eco, &job, threshold);

    sim::Simulation simul(tick_s);
    simul.addListener([&](TimeS t, TimeS dt) { pol.onTick(t, dt); },
                      sim::TickPhase::Policy);
    simul.addListener([&](TimeS t, TimeS dt) { job.onTick(t, dt); },
                      sim::TickPhase::Workload);
    eco.attach(simul);

    job.start(0);
    while (!job.done() && simul.now() < 20LL * 24 * 3600)
        simul.step();
    return Outcome{static_cast<double>(job.runtime()) / 3600.0,
                   eco.ves("job").totalCarbonG()};
}

} // namespace

int
main()
{
    std::printf("=== Ablation: tick interval delta-t (Section 3.1) "
                "===\n\n");
    TextTable t({"tick_s", "runtime_h", "carbon_g"});
    for (TimeS tick : {10, 60, 300, 900}) {
        auto o = runWith(tick);
        t.addRow({std::to_string(tick), TextTable::fmt(o.runtime_h, 2),
                  TextTable::fmt(o.carbon_g, 3)});
    }
    t.print();
    std::printf(
        "\nExpected: 10 s and the paper's 60 s tick agree closely "
        "(carbon moves slowly within a minute); multi-minute ticks "
        "drift as the policy reacts late to threshold crossings.\n");
    return 0;
}
