/**
 * @file
 * Figure 4 reproduction: carbon emissions and runtime for the ML
 * training job (a) and BLAST (b) under the carbon-agnostic baseline,
 * the system-level suspend-resume policy (WaitAWhile), and the
 * application-specific Wait&Scale policy at several scale factors.
 * Each configuration is run ten times at random job arrivals; the
 * table reports mean +/- stddev, as the paper's error bars do.
 */

#include <cstdio>

#include "common/scenarios.h"
#include "util/table.h"

using namespace ecov;
using namespace ecov::bench;

namespace {

void
runFamily(const char *title, const wl::BatchJobConfig &job,
          const std::vector<std::pair<const char *, BatchRunConfig>> &rows)
{
    std::printf("\n--- %s ---\n", title);
    TextTable t({"policy", "co2_g(mean)", "co2_g(std)", "runtime_h(mean)",
                 "runtime_h(std)"});
    for (const auto &[name, cfg] : rows) {
        auto agg = aggregateBatchRuns(job, cfg, 10, 7);
        t.addRow({name, TextTable::fmt(agg.mean_carbon_g, 2),
                  TextTable::fmt(agg.std_carbon_g, 2),
                  TextTable::fmt(agg.mean_runtime_h, 2),
                  TextTable::fmt(agg.std_runtime_h, 2)});
    }
    t.print();
}

BatchRunConfig
cfg(BatchPolicyKind kind, double scale, double pct)
{
    BatchRunConfig c;
    c.kind = kind;
    c.scale = scale;
    c.threshold_pct = pct;
    c.trace_seed = 11;
    return c;
}

} // namespace

int
main()
{
    std::printf("=== Figure 4: carbon reduction policies for batch "
                "jobs ===\n");

    // (a) PyTorch-style ML training: 4 base workers, sync-limited.
    auto ml = wl::mlTrainingConfig("ml", 4.0 * 5.0 * 3600.0);
    runFamily("(a) ML training (ResNet-34-like scaling)", ml,
              {{"CO2-agnostic", cfg(BatchPolicyKind::Agnostic, 1, 30)},
               {"System (suspend-resume)",
                cfg(BatchPolicyKind::SuspendResume, 1, 30)},
               {"W&S (2X)", cfg(BatchPolicyKind::WaitAndScale, 2, 30)},
               {"W&S (3X)", cfg(BatchPolicyKind::WaitAndScale, 3, 30)}});

    // (b) BLAST: 8 base workers, near-linear to 3x.
    auto blast = wl::blastConfig("blast", 8.0 * 2.0 * 3600.0);
    runFamily("(b) BLAST (embarrassingly parallel, queue-server "
              "bottleneck at 3X)",
              blast,
              {{"CO2-agnostic", cfg(BatchPolicyKind::Agnostic, 1, 33)},
               {"System (suspend-resume)",
                cfg(BatchPolicyKind::SuspendResume, 1, 33)},
               {"W&S (2X)", cfg(BatchPolicyKind::WaitAndScale, 2, 33)},
               {"W&S (3X)", cfg(BatchPolicyKind::WaitAndScale, 3, 33)},
               {"W&S (4X)", cfg(BatchPolicyKind::WaitAndScale, 4, 33)}});

    std::printf(
        "\nPaper shape check: agnostic = fastest, dirtiest; "
        "suspend-resume cuts CO2 ~25%% at a large runtime penalty;\n"
        "W&S matches the CO2 cut at much lower runtime; ML stops "
        "gaining past 2X; BLAST keeps gaining to 3X, 4X adds CO2 "
        "only.\n");
    return 0;
}
