/**
 * @file
 * Ablation / extension: battery carbon arbitrage (Section 3.1 names
 * it as a use of the battery setters; no paper figure quantifies it).
 *
 * A constant-load application arbitrages the CAISO-like diurnal
 * carbon signal through its virtual battery: charge below the 30th
 * intensity percentile, discharge above the 70th. Sweeps battery
 * capacity and reports carbon savings versus running without storage,
 * with ideal and lossy (90 %) round-trip efficiency.
 */

#include <cstdio>

#include "carbon/region_traces.h"
#include "core/ecovisor.h"
#include "policies/carbon_arbitrage.h"
#include "sim/simulation.h"
#include "util/table.h"

using namespace ecov;

namespace {

double
runWith(double capacity_wh, double efficiency, bool arbitrage)
{
    auto signal = carbon::makeCaisoLikeTrace(4, 19);
    energy::GridConnection grid(&signal);
    cop::Cluster cluster(4, power::ServerPowerConfig{});
    energy::BatteryConfig bank;
    bank.capacity_wh = std::max(1.0, capacity_wh);
    bank.soc_floor = 0.0;
    bank.max_charge_w = bank.capacity_wh / 4.0;  // 0.25C
    bank.max_discharge_w = bank.capacity_wh;     // 1C
    bank.initial_soc = 0.0;
    bank.efficiency = efficiency;
    energy::PhysicalEnergySystem phys(&grid, nullptr, bank);
    core::Ecovisor eco(&cluster, &phys);

    core::AppShareConfig share;
    share.battery = bank;
    eco.addApp("app", share);

    policy::CarbonArbitrageConfig cfg;
    cfg.low_g_per_kwh = signal.intensityPercentile(30.0);
    cfg.high_g_per_kwh = signal.intensityPercentile(70.0);
    cfg.charge_rate_w = bank.max_charge_w;
    cfg.max_discharge_w = bank.max_discharge_w;
    policy::CarbonArbitragePolicy pol(&eco, "app", cfg);

    auto id = cluster.createContainer("app", 4.0);
    if (id)
        cluster.setDemand(*id, 1.0); // constant 5 W

    sim::Simulation simul(60);
    if (arbitrage) {
        simul.addListener([&](TimeS t, TimeS dt) { pol.onTick(t, dt); },
                          sim::TickPhase::Policy);
    } else {
        eco.setBatteryMaxDischarge("app", 0.0);
    }
    eco.attach(simul);
    simul.runUntil(4 * 24 * 3600);
    return eco.ves("app").totalCarbonG();
}

} // namespace

int
main()
{
    std::printf("=== Ablation: battery carbon arbitrage (Section 3.1) "
                "===\n\n");
    double base = runWith(1.0, 1.0, false);
    std::printf("no-storage baseline: %.3f gCO2 over 4 days "
                "(constant 5 W load)\n\n",
                base);

    TextTable t({"battery_wh", "co2_g(eff=1.0)", "saving_pct",
                 "co2_g(eff=0.9)", "saving_pct(0.9)"});
    for (double cap : {5.0, 10.0, 20.0, 40.0, 80.0}) {
        double ideal = runWith(cap, 1.0, true);
        double lossy = runWith(cap, 0.9, true);
        t.addRow({TextTable::fmt(cap, 0), TextTable::fmt(ideal, 3),
                  TextTable::fmt(100.0 * (1.0 - ideal / base), 1),
                  TextTable::fmt(lossy, 3),
                  TextTable::fmt(100.0 * (1.0 - lossy / base), 1)});
    }
    t.print();
    std::printf(
        "\nExpected: savings grow with capacity while the bank can be "
        "drained into the load during dirty periods, then *decline*: "
        "an oversized bank keeps charging near the threshold but can "
        "only discharge at the 5 W load rate, stranding paid-for "
        "energy. Round-trip losses shave every row and push oversized "
        "banks negative.\n");
    return 0;
}
