/**
 * @file
 * Figure 5 reproduction: multi-tenancy of application-specific carbon
 * reduction policies. ML training (W&S 2X) and BLAST (W&S 3X) run
 * concurrently on the shared cluster; prints the carbon signal with
 * both resume thresholds (a), each job's container count over time
 * (b, c) and total cluster power (d).
 */

#include <cstdio>

#include "common/scenarios.h"
#include "util/table.h"

using namespace ecov;
using namespace ecov::bench;

namespace {

/** Downsample a series to every n-th point for compact output. */
void
printSeries(const char *name, const Series &s, int every,
            double scale = 1.0)
{
    std::printf("\n%s (time_h,value):\n", name);
    CsvWriter csv(stdout, {"time_h", "value"});
    for (std::size_t i = 0; i < s.size();
         i += static_cast<std::size_t>(every)) {
        csv.row({static_cast<double>(s[i].first) / 3600.0,
                 s[i].second * scale});
    }
}

} // namespace

int
main()
{
    std::printf("=== Figure 5: multi-tenant carbon reduction ===\n");
    auto r = runMultiTenantBatch(11);

    std::printf("\n(a) resume thresholds: ML(30th pct)=%.1f, "
                "BLAST(33rd pct)=%.1f gCO2/kWh\n",
                r.ml_threshold, r.blast_threshold);

    printSeries("(a) carbon intensity (gCO2/kWh)", r.carbon_signal, 30);
    printSeries("(b) ML training containers (W&S 2X)", r.ml_containers,
                30);
    printSeries("(c) BLAST containers (W&S 3X)", r.blast_containers, 30);
    printSeries("(d) cluster power (W, incl. idle baseline)",
                r.cluster_power_w, 30);

    std::printf(
        "\nPaper shape check: both jobs pause above their thresholds; "
        "ML resumes with 8 containers (2X of 4), BLAST with 24 (3X of "
        "8); cluster power shows the ecovisor's idle baseline when "
        "both jobs pause.\n");
    return 0;
}
