/**
 * @file
 * Figure 6 reproduction: static carbon rate limiting vs dynamic
 * carbon budgeting for two concurrent web applications over a 48 h
 * trace whose late peak overlaps a high-carbon period. Prints the
 * carbon/workload context (a) and each app's p95 latency under both
 * policies (b, c), plus SLO-violation and total-carbon summaries.
 */

#include <cstdio>

#include "common/scenarios.h"
#include "util/table.h"

using namespace ecov;
using namespace ecov::bench;

int
main()
{
    std::printf("=== Figure 6: carbon budgeting for web services ===\n");

    auto st = runWebBudgetScenario(false, 21);
    auto dy = runWebBudgetScenario(true, 21);

    std::printf("\n(a) context series "
                "(time_h,carbon_gkwh,load1_rps,load2_rps):\n");
    {
        CsvWriter csv(stdout,
                      {"time_h", "carbon_gkwh", "load1", "load2"});
        const auto &cs = st.carbon_signal;
        for (std::size_t i = 0; i < cs.size(); i += 30) {
            std::size_t j = std::min(i, st.app1.workload_rps.size() - 1);
            csv.row({static_cast<double>(cs[i].first) / 3600.0,
                     cs[i].second, st.app1.workload_rps[j].second,
                     st.app2.workload_rps[j].second});
        }
    }

    auto printLatency = [](const char *title,
                           const WebAppMeasurements &sys,
                           const WebAppMeasurements &app, double slo) {
        std::printf("\n%s (time_h,system_p95_ms,dynamic_p95_ms,"
                    "slo_ms):\n",
                    title);
        CsvWriter csv(stdout, {"time_h", "system", "dynamic", "slo"});
        std::size_t n = std::min(sys.latency_p95_ms.size(),
                                 app.latency_p95_ms.size());
        for (std::size_t i = 0; i < n; i += 30) {
            csv.row({static_cast<double>(sys.latency_p95_ms[i].first) /
                         3600.0,
                     sys.latency_p95_ms[i].second,
                     app.latency_p95_ms[i].second, slo});
        }
    };
    printLatency("(b) web app 1 p95 latency", st.app1, dy.app1, 60.0);
    printLatency("(c) web app 2 p95 latency", st.app2, dy.app2, 70.0);

    std::printf("\nSummary:\n");
    TextTable t({"app", "policy", "slo_violations", "total_co2_g"});
    t.addRow({"web1", "system (static rate)",
              std::to_string(st.app1.slo_violations),
              TextTable::fmt(st.app1.carbon_g, 2)});
    t.addRow({"web1", "dynamic budget",
              std::to_string(dy.app1.slo_violations),
              TextTable::fmt(dy.app1.carbon_g, 2)});
    t.addRow({"web2", "system (static rate)",
              std::to_string(st.app2.slo_violations),
              TextTable::fmt(st.app2.carbon_g, 2)});
    t.addRow({"web2", "dynamic budget",
              std::to_string(dy.app2.slo_violations),
              TextTable::fmt(dy.app2.carbon_g, 2)});
    t.print();

    double red1 = 100.0 * (1.0 - dy.app1.carbon_g / st.app1.carbon_g);
    double red2 = 100.0 * (1.0 - dy.app2.carbon_g / st.app2.carbon_g);
    std::printf("\nDynamic budgeting carbon reduction: web1 %.1f%%, "
                "web2 %.1f%% (paper: 22.8%% and 23.4%%).\n",
                red1, red2);
    std::printf("Paper shape check: the static policy violates the "
                "SLO when high carbon meets high load; the dynamic "
                "policy banks credits and never violates.\n");
    return 0;
}
