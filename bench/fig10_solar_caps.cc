/**
 * @file
 * Figure 10 reproduction: running a 10-worker parallel job directly
 * on solar power with per-container power caps. Prints the solar
 * trace (a), the mean dynamic cap over time vs the static split (b),
 * and the runtime improvement + energy-efficiency sweep over
 * available renewable power (c).
 */

#include <cstdio>

#include "common/scenarios.h"
#include "util/table.h"

using namespace ecov;
using namespace ecov::bench;

int
main()
{
    std::printf("=== Figure 10: direct solar exploitation via "
                "vertical scaling ===\n");

    // (a) + (b): one representative day at 50 % solar.
    auto dyn = runSolarCapScenario(SolarPolicyKind::DynamicCaps, 50.0,
                                   13, false);
    std::printf("\n(a) solar power (time_h,watts) and (b) mean "
                "container cap (time_h,watts):\n");
    {
        CsvWriter csv(stdout, {"time_h", "solar_w", "mean_cap_w"});
        std::size_t n =
            std::min(dyn.solar_w.size(), dyn.container_caps_w.size());
        for (std::size_t i = 0; i < n; i += 30) {
            csv.row({static_cast<double>(dyn.solar_w[i].first) / 3600.0,
                     dyn.solar_w[i].second,
                     dyn.container_caps_w[i].second});
        }
    }

    // (c): sweep available renewable power. The paper sweeps 10-90 %;
    // below ~25 % our power model cannot even cover the ten workers'
    // aggregate idle-share power (a cap under the idle share forces
    // utilization to zero), so the feasible sweep starts at 30 %.
    std::printf("\n(c) sweep over available renewable power:\n");
    TextTable t({"solar_pct", "static_runtime_h", "dynamic_runtime_h",
                 "runtime_improvement_pct", "energy_eff_1_per_kj"});
    for (double pct = 30.0; pct <= 90.0; pct += 15.0) {
        auto st = runSolarCapScenario(SolarPolicyKind::StaticCaps, pct,
                                      13, false);
        auto dy = runSolarCapScenario(SolarPolicyKind::DynamicCaps, pct,
                                      13, false);
        double improvement =
            100.0 * (1.0 - static_cast<double>(dy.runtime_s) /
                               static_cast<double>(st.runtime_s));
        // Energy efficiency: useful work per joule (scaled to 1/kJ).
        double eff = dy.useful_work /
                     (dy.energy_wh * 3600.0) * 1000.0;
        t.addRow({TextTable::fmt(pct, 0),
                  TextTable::fmt(st.runtime_s / 3600.0, 2),
                  TextTable::fmt(dy.runtime_s / 3600.0, 2),
                  TextTable::fmt(improvement, 1),
                  TextTable::fmt(eff, 3)});
    }
    t.print();

    std::printf(
        "\nPaper shape check: the dynamic policy's runtime advantage "
        "grows as solar shrinks (rebalancing matters most under "
        "scarcity); energy-efficiency rises with solar as idle power "
        "is amortized over more work.\n");
    return 0;
}
