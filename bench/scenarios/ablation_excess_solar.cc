/**
 * @file
 * Ablation scenario: the excess-solar policy (Section 3.1 calls it a
 * policy decision — reclaim & redistribute, net meter, or curtail).
 *
 * Two apps share a solar array; app "full" owns 70 % of it but its
 * small battery saturates quickly, while app "hungry" owns 30 % and
 * has headroom. Records where the excess energy ends up under each
 * ExcessSolarPolicy over one day.
 */

#include <cstdio>

#include "carbon/carbon_signal.h"
#include "common/registry.h"
#include "core/ecovisor.h"
#include "energy/solar_array.h"
#include "sim/simulation.h"
#include "util/table.h"

namespace ecov::bench {
namespace {

struct Outcome
{
    double curtailed_wh;
    double net_metered_wh;
    double hungry_battery_wh;
};

Outcome
runWith(core::ExcessSolarPolicy policy, std::uint64_t seed,
        TimeS tick_s)
{
    carbon::TraceCarbonSignal signal({{0, 200.0}});
    energy::GridConnection grid(&signal);
    energy::SolarTraceConfig sc;
    sc.peak_w = 120.0;
    sc.cloudiness = 0.1;
    auto solar = energy::makeSolarTrace(sc, seed);
    cop::Cluster cluster(8, power::ServerPowerConfig{});
    energy::BatteryConfig bank;
    bank.capacity_wh = 2000.0;
    bank.max_charge_w = 500.0;
    bank.max_discharge_w = 2000.0;
    energy::PhysicalEnergySystem phys(&grid, &solar, bank);

    core::EcovisorOptions opts;
    opts.excess_solar = policy;
    core::Ecovisor eco(&cluster, &phys, opts);

    core::AppShareConfig full;
    full.solar_fraction = 0.7;
    energy::BatteryConfig fb;
    fb.capacity_wh = 50.0;
    fb.max_charge_w = 20.0;
    fb.max_discharge_w = 50.0;
    fb.initial_soc = 0.9;
    full.battery = fb;
    eco.tryAddApp("full", full).value();

    // Big enough that it never saturates within the day: the policies
    // now differ in totals, not just timing.
    core::AppShareConfig hungry;
    hungry.solar_fraction = 0.3;
    energy::BatteryConfig hb;
    hb.capacity_wh = 1900.0;
    hb.max_charge_w = 120.0;
    hb.max_discharge_w = 500.0;
    hb.initial_soc = 0.31;
    hungry.battery = hb;
    const api::AppHandle hungry_h =
        eco.tryAddApp("hungry", hungry).value();

    sim::Simulation simul(tick_s);
    eco.attach(simul);
    simul.runUntil(24 * 3600);

    return Outcome{eco.curtailedWh(), eco.netMeteredWh(),
                   eco.getBatteryChargeLevel(hungry_h).value()};
}

const char *
name(core::ExcessSolarPolicy p)
{
    switch (p) {
      case core::ExcessSolarPolicy::Curtail:
        return "curtail (prototype default)";
      case core::ExcessSolarPolicy::Redistribute:
        return "redistribute";
      case core::ExcessSolarPolicy::NetMeter:
        return "net-meter";
    }
    return "?";
}

ScenarioOutcome
run(const ScenarioOptions &opt)
{
    struct Policy
    {
        core::ExcessSolarPolicy policy;
        const char *key;
    };
    const Policy policies[] = {
        {core::ExcessSolarPolicy::Curtail, "curtail"},
        {core::ExcessSolarPolicy::Redistribute, "redistribute"},
        {core::ExcessSolarPolicy::NetMeter, "netmeter"},
    };

    ScenarioOutcome out;
    TextTable t({"policy", "curtailed_wh", "net_metered_wh",
                 "hungry_app_battery_wh"});
    for (const auto &p : policies) {
        auto o = runWith(p.policy, opt.seed, opt.tick_s);
        const std::string prefix = std::string(p.key) + "_";
        out.metric(prefix + "curtailed_wh", o.curtailed_wh);
        out.metric(prefix + "net_metered_wh", o.net_metered_wh);
        out.metric(prefix + "hungry_battery_wh", o.hungry_battery_wh);
        t.addRow({name(p.policy), TextTable::fmt(o.curtailed_wh, 1),
                  TextTable::fmt(o.net_metered_wh, 1),
                  TextTable::fmt(o.hungry_battery_wh, 1)});
    }

    if (opt.print_figures) {
        std::printf("=== Ablation: excess-solar policy (Section 3.1) "
                    "===\n\n");
        t.print();
        std::printf(
            "\nExpected: curtail wastes the saturated app's excess; "
            "redistribute moves it into the other app's battery; "
            "net-meter exports it. Totals are conserved either way "
            "(energy-conservation invariant).\n");
    }
    return out;
}

const ScenarioRegistrar reg({
    "ablation_excess_solar",
    "Ablation: excess-solar policy (curtail vs redistribute vs "
    "net-meter) over one solar day",
    /*default_seed=*/5,
    {},
    run,
});

} // namespace
} // namespace ecov::bench
