/**
 * @file
 * Ablation scenario: the tick interval delta-t (Section 3.1
 * discretizes power and carbon over a small tick interval, e.g. one
 * minute, and argues minute-level ticks are fine because carbon does
 * not change significantly within a minute).
 *
 * Runs the suspend-resume batch scenario at several tick lengths and
 * compares carbon, runtime, and policy responsiveness. Coarser ticks
 * react later to threshold crossings, lengthening exposure to
 * high-carbon power. This scenario sweeps the tick itself, so the
 * --tick override is ignored.
 */

#include <cstdio>
#include <vector>

#include "carbon/region_traces.h"
#include "common/registry.h"
#include "core/ecovisor.h"
#include "policies/carbon_reduction.h"
#include "sim/simulation.h"
#include "util/table.h"
#include "workloads/batch_job.h"

namespace ecov::bench {
namespace {

struct Outcome
{
    double runtime_h;
    double carbon_g;
};

Outcome
runWith(TimeS tick_s, std::uint64_t seed, double work_scale,
        TimeS horizon_s)
{
    auto signal = carbon::makeCaisoLikeTrace(8, seed);
    energy::GridConnection grid(&signal);
    cop::Cluster cluster(16, power::ServerPowerConfig{});
    energy::PhysicalEnergySystem phys(&grid, nullptr, std::nullopt);
    core::Ecovisor eco(&cluster, &phys);
    const api::AppHandle job_h =
        eco.tryAddApp("job", core::AppShareConfig{}).value();

    auto cfg =
        wl::mlTrainingConfig("job", 4.0 * 5.0 * 3600.0 * work_scale);
    wl::BatchJob job(&cluster, cfg);
    double threshold = signal.intensityPercentile(30.0, 0, 48 * 3600);
    policy::SuspendResumePolicy pol(&eco, &job, threshold);

    sim::Simulation simul(tick_s);
    simul.addListener([&](TimeS t, TimeS dt) { pol.onTick(t, dt); },
                      sim::TickPhase::Policy);
    simul.addListener([&](TimeS t, TimeS dt) { job.onTick(t, dt); },
                      sim::TickPhase::Workload);
    eco.attach(simul);

    job.start(0);
    while (!job.done() && simul.now() < horizon_s)
        simul.step();
    return Outcome{static_cast<double>(job.runtime()) / 3600.0,
                   eco.ves(job_h)->totalCarbonG()};
}

ScenarioOutcome
run(const ScenarioOptions &opt)
{
    const bool is_short = opt.horizon == Horizon::Short;
    const double work_scale = is_short ? 0.25 : 1.0;
    const TimeS horizon_s =
        (is_short ? 5LL : 20LL) * 24 * 3600;
    const std::vector<TimeS> ticks =
        is_short ? std::vector<TimeS>{60, 300}
                 : std::vector<TimeS>{10, 60, 300, 900};

    ScenarioOutcome out;
    TextTable t({"tick_s", "runtime_h", "carbon_g"});
    for (TimeS tick : ticks) {
        auto o = runWith(tick, opt.seed, work_scale, horizon_s);
        out.metric("tick" + std::to_string(tick) + "_runtime_h",
                   o.runtime_h);
        out.metric("tick" + std::to_string(tick) + "_carbon_g",
                   o.carbon_g);
        t.addRow({std::to_string(tick), TextTable::fmt(o.runtime_h, 2),
                  TextTable::fmt(o.carbon_g, 3)});
    }

    if (opt.print_figures) {
        std::printf("=== Ablation: tick interval delta-t (Section "
                    "3.1) ===\n\n");
        t.print();
        std::printf(
            "\nExpected: 10 s and the paper's 60 s tick agree closely "
            "(carbon moves slowly within a minute); multi-minute "
            "ticks drift as the policy reacts late to threshold "
            "crossings.\n");
    }
    return out;
}

const ScenarioRegistrar reg({
    "ablation_tick_interval",
    "Ablation: tick-interval sweep for the suspend-resume batch "
    "policy (ignores --tick; the sweep IS the tick)",
    /*default_seed=*/11,
    {},
    run,
});

} // namespace
} // namespace ecov::bench
