/**
 * @file
 * Scale scenario: the remote multi-tenant transport under a seeded
 * fault storm (docs/FAULTS.md).
 *
 * 64 tenants on leased loopback connections (lease 20 ticks), each
 * behind a fault::FaultyTransport that kills, truncates, or delays
 * frames from its own seeded fate stream. A FaultSchedule::storm
 * drives the run from both sides: its energy events (grid outages,
 * solar derates, sensor blackouts, battery faults) arm the ecovisor
 * through a FaultInjector, while its TransportClose events take
 * tenants down for a scheduled number of ticks. Downed tenants come
 * back through reconnect-and-resume — retransmitting unacknowledged
 * mutations into the server's dedup window — or, when the lease
 * expired while they were away, abandon the session and re-register
 * under a fresh incarnation name.
 *
 * Domain metrics (baseline-diffed at --tolerance=0): outage/recovery
 * counts (planned closes, chaos deaths, resumes, re-registrations),
 * the server's lease/dedup counters, the ecovisor's degradation
 * accounting (degraded ticks, SLO violations, unserved Wh), carbon
 * totals plain and rank-weighted, and delivered/dropped frame fates.
 * Every one is a pure function of (seed, horizon, tick): fates and
 * storms are seeded, commits are canonical (session, request) order,
 * and nothing consults a wall clock.
 *
 * Perf metrics (warn-only): requests/sec through the chaos stack.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "carbon/carbon_signal.h"
#include "common/registry.h"
#include "core/ecovisor.h"
#include "fault/faulty_transport.h"
#include "fault/injector.h"
#include "fault/schedule.h"
#include "net/client.h"
#include "net/loopback.h"
#include "net/server.h"
#include "util/table.h"

namespace ecov::bench {
namespace {

constexpr int kTenants = 64;
constexpr int kPoolSize = 2;
constexpr std::uint32_t kLeaseTicks = 20;

/** One tenant: its chaos-wrapped connection and lease bookkeeping. */
struct Tenant
{
    std::string base; ///< "c007"; incarnations append "#N"
    std::unique_ptr<net::LoopbackTransport> loop;
    std::unique_ptr<fault::FaultyTransport> chaos;
    std::unique_ptr<net::Client> client;
    int incarnation = 0;
    /** First tick index at which the tenant may reconnect; -1 = up. */
    std::int64_t down_until = -1;
    /** Request ids awaiting replies (cleared on re-registration). */
    std::vector<std::uint32_t> outstanding;

    bool up() const { return down_until < 0; }
};

struct World
{
    carbon::TraceCarbonSignal signal;
    energy::GridConnection grid;
    energy::SolarArray solar;
    cop::Cluster cluster;
    energy::PhysicalEnergySystem phys;
    core::Ecovisor eco;
    net::ServerCore server;
    std::vector<Tenant> tenants;

    explicit World(std::uint64_t seed)
        : signal({{0, 100.0}, {3600, 300.0}, {7200, 50.0}}, 10800),
          grid(&signal),
          solar({{0, 0.0}, {6 * 3600, 200.0}, {18 * 3600, 0.0}},
                24 * 3600),
          cluster(kTenants,
                  power::ServerPowerConfig{8, 1.35, 5.0, 0.0}),
          phys(&grid, &solar, energy::BatteryConfig{}),
          eco(&cluster, &phys,
              core::EcovisorOptions{core::ExcessSolarPolicy::Curtail,
                                    /*record_telemetry=*/false}),
          server(&eco, leaseOptions())
    {
        fault::TransportFaultProfile profile;
        profile.p_kill = 0.02;
        profile.p_partial = 0.01;
        profile.p_delay = 0.08;
        tenants.resize(kTenants);
        for (int a = 0; a < kTenants; ++a) {
            Tenant &t = tenants[static_cast<std::size_t>(a)];
            char buf[16];
            std::snprintf(buf, sizeof buf, "c%03d", a);
            t.base = buf;
            t.loop =
                std::make_unique<net::LoopbackTransport>(&server);
            t.chaos = std::make_unique<fault::FaultyTransport>(
                t.loop.get(),
                seed * 0x9E37'79B9u + static_cast<std::uint64_t>(a),
                profile);
            t.client = std::make_unique<net::Client>(t.chaos.get());
        }
    }

    static net::ServerCoreOptions
    leaseOptions()
    {
        net::ServerCoreOptions o;
        o.lease_ticks = kLeaseTicks;
        // Benches are a single trust domain: inject a seed so resume
        // tokens stay deterministic (no runtime entropy in any run).
        o.token_seed = 0xC4A0'5EED'0000'0001ull;
        return o;
    }

    /**
     * First incarnations of even tenants own a sliver of solar and
     * battery; everything else runs plain on the grid. Re-registered
     * incarnations never take shares — apps are permanent in the
     * ecovisor, so recurring shares would eventually oversubscribe.
     */
    static core::AppShareConfig
    shareFor(int tenant, int incarnation)
    {
        core::AppShareConfig share;
        if (incarnation > 0 || tenant % 2 != 0)
            return share;
        const double n = static_cast<double>(kTenants);
        share.solar_fraction = 0.9 / n;
        energy::BatteryConfig b;
        b.capacity_wh = 1000.0 / n;
        b.max_charge_w = 250.0 / n;
        b.max_discharge_w = 1000.0 / n;
        b.initial_soc = 0.5;
        share.battery = b;
        return share;
    }
};

struct RunTotals
{
    std::uint64_t requests = 0;
    std::uint64_t replies_ok = 0;
    std::uint64_t replies_lost = 0;
    std::uint64_t planned_outages = 0;
    std::uint64_t chaos_deaths = 0;
    std::uint64_t resumes_ok = 0;
    std::uint64_t reregistrations = 0;
    double wall_s = 0.0;
};

/** Pipelined register + pool spawn for a (re)incarnating tenant. */
void
registerTenant(Tenant &t, int index, RunTotals *totals)
{
    std::string name = t.base;
    if (t.incarnation > 0)
        name += "#" + std::to_string(t.incarnation);
    t.outstanding.push_back(t.client->sendRegisterApp(
        name, World::shareFor(index, t.incarnation)));
    for (int k = 0; k < kPoolSize; ++k)
        t.outstanding.push_back(t.client->sendSpawnContainer(
            net::RemoteApp{0}, 1.0));
    totals->requests += 1 + kPoolSize;
}

/** Reconnect a downed tenant: resume the lease or start over. */
void
recoverTenant(World &w, int index, RunTotals *totals)
{
    Tenant &t = w.tenants[static_cast<std::size_t>(index)];
    t.loop = std::make_unique<net::LoopbackTransport>(&w.server);
    t.chaos->rebind(t.loop.get());
    t.client->bindTransport(t.chaos.get());
    if (t.client->resume().ok()) {
        ++totals->resumes_ok;
    } else {
        // Lease expired (or never held): the old namespace is gone.
        t.client->abandonSession();
        t.outstanding.clear();
        ++t.incarnation;
        ++totals->reregistrations;
        t.client->beginSession();
        registerTenant(t, index, totals);
    }
    t.down_until = -1;
}

void
drive(World &w, const ScenarioOptions &opt, std::int64_t ticks,
      const fault::FaultSchedule &storm, RunTotals *totals)
{
    using Clock = std::chrono::steady_clock;
    const auto wall0 = Clock::now();
    const TimeS dt = opt.tick_s;

    // Setup tick: sessions, registrations, pools.
    for (int a = 0; a < kTenants; ++a) {
        Tenant &t = w.tenants[static_cast<std::size_t>(a)];
        t.client->beginSession();
        registerTenant(t, a, totals);
    }
    w.eco.settleTick(0, dt);

    for (std::int64_t tick = 1; tick <= ticks; ++tick) {
        const TimeS t_s = static_cast<TimeS>(tick) * dt;

        // 1. Downed tenants whose outage elapsed reconnect first —
        //    resume (or re-register) before this tick's traffic.
        for (int a = 0; a < kTenants; ++a) {
            Tenant &t = w.tenants[static_cast<std::size_t>(a)];
            if (!t.up() && t.down_until <= tick)
                recoverTenant(w, a, totals);
        }

        // 2. The storm's scheduled closes for this tick window.
        storm.forEachTransportCloseIn(
            t_s, t_s + dt, [&](const fault::FaultEvent &e) {
                if (e.target >= static_cast<std::uint32_t>(kTenants))
                    return;
                Tenant &t = w.tenants[e.target];
                const auto until =
                    tick + std::max<std::int64_t>(
                               1, static_cast<std::int64_t>(
                                      e.magnitude));
                if (t.up()) {
                    t.loop.reset(); // close -> the session detaches
                    ++totals->planned_outages;
                    t.down_until = until;
                } else {
                    t.down_until = std::max(t.down_until, until);
                }
            });

        // 3. Traffic: demand updates on every pool slot, sent through
        //    armed chaos. A fate that kills the transport becomes an
        //    unplanned one-tick outage recovered by resume.
        for (int a = 0; a < kTenants; ++a) {
            Tenant &t = w.tenants[static_cast<std::size_t>(a)];
            if (!t.up())
                continue;
            t.chaos->arm(true);
            for (int k = 0; k < kPoolSize; ++k) {
                const double phase = static_cast<double>(
                    (tick * 31 + a * 13 + k * 7) % 97);
                t.outstanding.push_back(t.client->sendSetDemand(
                    net::RemoteContainer{
                        static_cast<std::uint32_t>(k)},
                    0.2 + 0.6 * phase / 97.0));
                ++totals->requests;
            }
            t.chaos->arm(false);
            t.chaos->flushDelayed();
            if (t.chaos->dead()) {
                t.loop.reset();
                t.down_until = tick + 1;
                ++totals->chaos_deaths;
            }
        }

        // 4. Commit point: canonical (session, request) order, then
        //    lease aging — the storm's energy faults were armed by
        //    the injector hook at the top of the settlement.
        w.eco.settleTick(t_s, dt);

        // 5. Collect replies on healthy connections. Requests whose
        //    replies are still in flight (retransmitted this tick,
        //    committing next) count as lost-for-now; dedup replay
        //    keeps their eventual commit exactly-once either way.
        for (int a = 0; a < kTenants; ++a) {
            Tenant &t = w.tenants[static_cast<std::size_t>(a)];
            if (!t.up())
                continue;
            if (!t.client->connectionError().ok()) {
                t.loop.reset();
                t.down_until = tick + 1;
                ++totals->chaos_deaths;
                continue;
            }
            for (const std::uint32_t r : t.outstanding) {
                if (t.client->await(r).ok())
                    ++totals->replies_ok;
                else
                    ++totals->replies_lost;
            }
            t.outstanding.clear();
        }
    }

    totals->wall_s =
        std::chrono::duration<double>(Clock::now() - wall0).count();
}

ScenarioOutcome
run(const ScenarioOptions &opt)
{
    const std::int64_t ticks =
        opt.horizon == Horizon::Short ? 120 : 1440;

    World w(opt.seed);
    fault::StormProfile profile;
    profile.tenants = kTenants;
    const auto storm = fault::FaultSchedule::storm(
        opt.seed, static_cast<TimeS>(ticks + 1) * opt.tick_s,
        opt.tick_s, profile);
    fault::FaultInjector injector(&w.eco, storm);

    RunTotals totals;
    drive(w, opt, ticks, injector.schedule(), &totals);

    // Carbon per app (every incarnation), plain and rank-weighted in
    // canonical name order — a permutation-sensitive digest.
    double carbon_g = 0.0;
    double carbon_weighted = 0.0;
    const auto names = w.eco.appNames();
    for (std::size_t i = 0; i < names.size(); ++i) {
        const double c = w.eco.ves(names[i]).totalCarbonG();
        carbon_g += c;
        carbon_weighted += static_cast<double>(i + 1) * c;
    }
    std::uint64_t dropped = 0, delivered = 0;
    for (const Tenant &t : w.tenants) {
        dropped += t.chaos->framesDropped() + t.chaos->partialWrites();
        delivered += t.chaos->framesDelivered();
    }
    const net::ServerStats &st = w.server.stats();

    ScenarioOutcome out;
    out.metric("horizon_ticks", static_cast<double>(ticks));
    out.metric("planned_outages",
               static_cast<double>(totals.planned_outages));
    out.metric("chaos_deaths",
               static_cast<double>(totals.chaos_deaths));
    out.metric("resumes_ok", static_cast<double>(totals.resumes_ok));
    out.metric("reregistrations",
               static_cast<double>(totals.reregistrations));
    out.metric("leases_started",
               static_cast<double>(st.leases_started));
    out.metric("leases_resumed",
               static_cast<double>(st.leases_resumed));
    out.metric("leases_expired",
               static_cast<double>(st.leases_expired));
    out.metric("duplicates_replayed",
               static_cast<double>(st.duplicates_replayed));
    out.metric("requests_total",
               static_cast<double>(totals.requests));
    out.metric("replies_ok", static_cast<double>(totals.replies_ok));
    out.metric("replies_lost",
               static_cast<double>(totals.replies_lost));
    out.metric("frames_dropped", static_cast<double>(dropped));
    out.metric("frames_delivered", static_cast<double>(delivered));
    out.metric("apps_registered", static_cast<double>(names.size()));
    out.metric("live_containers",
               static_cast<double>(w.cluster.containerCount()));
    out.metric("degraded_ticks",
               static_cast<double>(w.eco.degradedTicks()));
    out.metric("slo_violation_ticks",
               static_cast<double>(w.eco.sloViolationTicks()));
    out.metric("unserved_wh", w.eco.unservedWh());
    out.metric("carbon_g_total", carbon_g);
    out.metric("carbon_g_rank_weighted", carbon_weighted);

    const double rps =
        totals.wall_s > 0.0
            ? static_cast<double>(totals.requests) / totals.wall_s
            : 0.0;
    out.perfMetric("requests_per_sec", rps);

    if (opt.print_figures) {
        std::printf("=== Scale: %d leased tenants under a seeded "
                    "fault storm ===\n\n",
                    kTenants);
        TextTable t({"outages", "deaths", "resumed", "rereg",
                     "expired", "replayed", "degraded_ticks",
                     "unserved_wh", "carbon_g"});
        t.addRow({std::to_string(totals.planned_outages),
                  std::to_string(totals.chaos_deaths),
                  std::to_string(st.leases_resumed),
                  std::to_string(totals.reregistrations),
                  std::to_string(st.leases_expired),
                  std::to_string(st.duplicates_replayed),
                  std::to_string(w.eco.degradedTicks()),
                  TextTable::fmt(w.eco.unservedWh(), 3),
                  TextTable::fmt(carbon_g, 2)});
        t.print();
        std::printf("\nEvery metric above is a pure function of the "
                    "seed: storm windows, frame fates, and commit "
                    "order are all deterministic (docs/FAULTS.md).\n");
    }
    return out;
}

const ScenarioRegistrar reg({
    "scale_chaos",
    "Scale: 64 leased tenants under a seeded fault storm — transport "
    "kills with resume-or-reregister, energy faults with graceful "
    "degradation; fully deterministic",
    /*default_seed=*/7,
    {},
    run,
});

} // namespace
} // namespace ecov::bench
