/**
 * @file
 * Figure 5 scenario: multi-tenancy of application-specific carbon
 * reduction policies. ML training (W&S 2X) and BLAST (W&S 3X) run
 * concurrently on the shared cluster. Metrics capture the resume
 * thresholds and the peak container/power excursions the figure
 * plots; `--figures` prints the full series.
 */

#include <cstdio>

#include "common/registry.h"
#include "common/scenarios.h"
#include "common/series_stats.h"
#include "util/table.h"

namespace ecov::bench {
namespace {

/** Downsample a series to every n-th point for compact output. */
void
printSeries(const char *name, const Series &s, int every)
{
    std::printf("\n%s (time_h,value):\n", name);
    CsvWriter csv(stdout, {"time_h", "value"});
    for (std::size_t i = 0; i < s.size();
         i += static_cast<std::size_t>(every)) {
        csv.row({static_cast<double>(s[i].first) / 3600.0, s[i].second});
    }
}

ScenarioOutcome
run(const ScenarioOptions &opt)
{
    auto r = runMultiTenantBatch(opt.seed, tuningFor(opt));

    ScenarioOutcome out;
    out.metric("ml_threshold_gkwh", r.ml_threshold);
    out.metric("blast_threshold_gkwh", r.blast_threshold);
    out.metric("ml_peak_containers", seriesMax(r.ml_containers));
    out.metric("blast_peak_containers", seriesMax(r.blast_containers));
    out.metric("cluster_peak_power_w", seriesMax(r.cluster_power_w));

    if (opt.print_figures) {
        std::printf("=== Figure 5: multi-tenant carbon reduction ===\n");
        std::printf("\n(a) resume thresholds: ML(30th pct)=%.1f, "
                    "BLAST(33rd pct)=%.1f gCO2/kWh\n",
                    r.ml_threshold, r.blast_threshold);
        printSeries("(a) carbon intensity (gCO2/kWh)", r.carbon_signal,
                    30);
        printSeries("(b) ML training containers (W&S 2X)",
                    r.ml_containers, 30);
        printSeries("(c) BLAST containers (W&S 3X)", r.blast_containers,
                    30);
        printSeries("(d) cluster power (W, incl. idle baseline)",
                    r.cluster_power_w, 30);
        std::printf(
            "\nPaper shape check: both jobs pause above their "
            "thresholds; ML resumes with 8 containers (2X of 4), "
            "BLAST with 24 (3X of 8); cluster power shows the "
            "ecovisor's idle baseline when both jobs pause.\n");
    }
    return out;
}

const ScenarioRegistrar reg({
    "fig05_multitenancy",
    "Figure 5: multi-tenant carbon reduction (ML W&S 2X + BLAST W&S 3X "
    "sharing the cluster)",
    /*default_seed=*/11,
    {},
    run,
});

} // namespace
} // namespace ecov::bench
