/**
 * @file
 * Extension scenario: geo-distributed carbon shifting (Section 3.2
 * sketches it; the conclusion lists inter-cluster coordination as
 * future work).
 *
 * A batch job deployed at three region-like sites (Ontario-, Uruguay-
 * and California-shaped carbon signals) either stays pinned at one
 * site or follows the GeoShiftPolicy to the lowest-carbon site, with
 * checkpoint/restart migrations. Records carbon, runtime and
 * migration counts per deployment.
 */

#include <cstdio>

#include "carbon/region_traces.h"
#include "common/registry.h"
#include "core/ecovisor.h"
#include "geo/geo_batch_job.h"
#include "sim/simulation.h"
#include "util/table.h"

namespace ecov::bench {
namespace {

/** One self-contained site. */
struct SiteRig
{
    carbon::TraceCarbonSignal signal;
    energy::GridConnection grid;
    cop::Cluster cluster;
    energy::PhysicalEnergySystem phys;
    core::Ecovisor eco;

    SiteRig(const carbon::RegionProfile &profile, std::uint64_t seed,
            int days)
        : signal(carbon::makeRegionTrace(profile, days, seed)),
          grid(&signal),
          cluster(8, power::ServerPowerConfig{}),
          phys(&grid, nullptr, std::nullopt), eco(&cluster, &phys)
    {
        eco.tryAddApp("job", core::AppShareConfig{}).value();
    }
};

struct Outcome
{
    double carbon_g;
    double runtime_h;
    int migrations;
};

Outcome
runWith(bool shift, int pinned_site, const ScenarioOptions &opt)
{
    const int days = opt.horizon == Horizon::Short ? 2 : 4;
    const double work_scale =
        opt.horizon == Horizon::Short ? 0.5 : 1.0;

    SiteRig ontario(carbon::ontarioProfile(), opt.seed + 0, days);
    SiteRig uruguay(carbon::uruguayProfile(), opt.seed + 1, days);
    SiteRig california(carbon::californiaProfile(), opt.seed + 2, days);
    geo::GeoCoordinator coord({{"ontario", &ontario.eco, "job"},
                               {"uruguay", &uruguay.eco, "job"},
                               {"california", &california.eco, "job"}});

    geo::GeoBatchJobConfig jc;
    jc.total_work = 4.0 * 12.0 * 3600.0 * work_scale;
    jc.workers = 4;
    jc.migration_delay_s = 600;
    geo::GeoBatchJob job(&coord, jc);
    geo::GeoShiftPolicy policy(&coord, &job, 25.0);

    sim::Simulation simul(opt.tick_s);
    simul.addListener(
        [&](TimeS t, TimeS dt) {
            if (shift)
                policy.onTick(t, dt);
        },
        sim::TickPhase::Policy);
    simul.addListener([&](TimeS t, TimeS dt) { job.onTick(t, dt); },
                      sim::TickPhase::Workload);
    ontario.eco.attach(simul);
    uruguay.eco.attach(simul);
    california.eco.attach(simul);

    job.start(0, pinned_site);
    while (!job.done() &&
           simul.now() < static_cast<TimeS>(days) * 24 * 3600)
        simul.step();
    // runtime() is only valid once done(); fall back to the horizon
    // when the job was cut off so the report never carries a
    // negative runtime.
    const TimeS runtime_s = job.done()
                                ? job.runtime()
                                : simul.now();
    return Outcome{coord.totalCarbonG(),
                   static_cast<double>(runtime_s) / 3600.0,
                   job.migrations()};
}

ScenarioOutcome
run(const ScenarioOptions &opt)
{
    ScenarioOutcome out;
    TextTable t({"deployment", "carbon_g", "runtime_h", "migrations"});
    const char *names[] = {"pinned: ontario", "pinned: uruguay",
                           "pinned: california"};
    const char *keys[] = {"ontario", "uruguay", "california"};
    for (int s = 0; s < 3; ++s) {
        auto o = runWith(false, s, opt);
        out.metric(std::string(keys[s]) + "_carbon_g", o.carbon_g);
        out.metric(std::string(keys[s]) + "_runtime_h", o.runtime_h);
        t.addRow({names[s], TextTable::fmt(o.carbon_g, 2),
                  TextTable::fmt(o.runtime_h, 2),
                  std::to_string(o.migrations)});
    }
    auto shifted = runWith(true, 2, opt); // start at the dirtiest site
    out.metric("geoshift_carbon_g", shifted.carbon_g);
    out.metric("geoshift_runtime_h", shifted.runtime_h);
    out.metric("geoshift_migrations",
               static_cast<double>(shifted.migrations));
    t.addRow({"geo-shift (start: california)",
              TextTable::fmt(shifted.carbon_g, 2),
              TextTable::fmt(shifted.runtime_h, 2),
              std::to_string(shifted.migrations)});

    if (opt.print_figures) {
        std::printf("=== Extension: geo-distributed carbon shifting "
                    "(Section 3.2 / future work) ===\n\n");
        t.print();
        std::printf(
            "\nExpected: geo-shift approaches the cleanest pinned "
            "site's carbon (Ontario) even when started at the "
            "dirtiest, at a small runtime cost from "
            "checkpoint/restart migrations.\n");
    }
    return out;
}

const ScenarioRegistrar reg({
    "ablation_geo_shift",
    "Extension: geo-distributed carbon shifting across three "
    "region-shaped sites vs pinned deployments",
    /*default_seed=*/2,
    {},
    run,
});

} // namespace
} // namespace ecov::bench
