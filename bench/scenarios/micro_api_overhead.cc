/**
 * @file
 * Microbenchmark scenario: the cost of the ecovisor's narrow API
 * (Table 1 getters/setters) and of per-tick settlement at various
 * cluster sizes. Not a paper figure — a sanity check that the control
 * plane is cheap relative to the one-minute tick, and the measurement
 * backing the v2 API redesign: the string-keyed v1 surface, the
 * handle-addressed v2 surface and the batched EnergySnapshot are all
 * timed side by side (`*_string` vs `*_handle` vs `getters_snapshot`).
 * The handle path must beat the string path — it replaces a
 * string-keyed map walk with an array index. All timing results are
 * host-dependent and therefore reported as perf metrics (compared
 * warn-only by `ecobench diff`).
 */

#include <chrono>
#include <cstdio>
#include <vector>

#include "carbon/carbon_signal.h"
#include "common/registry.h"
#include "core/ecovisor.h"
#include "util/table.h"

namespace ecov::bench {
namespace {

/** The canonical rig the old google-benchmark binary used. */
struct Rig
{
    carbon::TraceCarbonSignal signal{{{0, 200.0}}};
    energy::GridConnection grid{&signal};
    energy::SolarArray solar{{{0, 100.0}}, 24 * 3600};
    cop::Cluster cluster;
    energy::PhysicalEnergySystem phys;
    core::Ecovisor eco;
    std::vector<cop::ContainerId> ids;

    explicit Rig(int nodes, int apps, int containers_per_app,
                 bool record_telemetry = false)
        : cluster(nodes, power::ServerPowerConfig{4, 1.35, 5.0, 0.0}),
          phys(&grid, &solar, energy::BatteryConfig{}),
          eco(&cluster, &phys,
              core::EcovisorOptions{core::ExcessSolarPolicy::Curtail,
                                    record_telemetry})
    {
        for (int a = 0; a < apps; ++a) {
            core::AppShareConfig share;
            share.solar_fraction = 1.0 / apps;
            energy::BatteryConfig b;
            b.capacity_wh = 1440.0 / apps;
            b.max_charge_w = 360.0 / apps;
            b.max_discharge_w = 1440.0 / apps;
            b.initial_soc = 0.5;
            share.battery = b;
            std::string name = "app" + std::to_string(a);
            eco.addApp(name, share);
            for (int c = 0; c < containers_per_app; ++c) {
                auto id = cluster.createContainer(name, 1.0);
                if (id) {
                    cluster.setDemand(*id, 0.7);
                    ids.push_back(*id);
                }
            }
        }
    }
};

/** Time `iters` calls of `fn`; returns mean ns/op. */
template <typename Fn>
double
nsPerOp(int iters, Fn &&fn)
{
    // A sink defeats dead-code elimination for getter loops.
    volatile double sink = 0.0;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i)
        sink = sink + fn(i);
    const auto end = std::chrono::steady_clock::now();
    (void)sink;
    return std::chrono::duration<double, std::nano>(end - start)
               .count() /
           static_cast<double>(iters);
}

ScenarioOutcome
run(const ScenarioOptions &opt)
{
    const int iters = opt.horizon == Horizon::Short ? 20000 : 200000;
    const int settle_iters =
        opt.horizon == Horizon::Short ? 2000 : 20000;

    ScenarioOutcome out;
    out.metric("getter_iterations", iters);
    out.metric("settle_iterations", settle_iters);

    TextTable t({"operation", "ns_per_op"});
    auto record = [&](const char *key, double ns) {
        out.perfMetric(std::string(key) + "_ns", ns);
        t.addRow({key, TextTable::fmt(ns, 1)});
    };

    {
        Rig rig(8, 2, 4);
        const api::AppHandle app0 = rig.eco.findApp("app0").value();
        record("get_grid_carbon", nsPerOp(iters, [&](int) {
                   return rig.eco.getGridCarbon();
               }));

        // The same getter through the three surfaces: v1 string path
        // (map walk per call), v2 handle path (array index), and the
        // batched snapshot below.
        record("get_solar_power", nsPerOp(iters, [&](int) {
                   return rig.eco.getSolarPower("app0");
               }));
        record("get_solar_power_handle", nsPerOp(iters, [&](int) {
                   return rig.eco.getSolarPower(app0).value();
               }));

        // The full Table 1 getter set for one app: five string calls
        // vs five handle calls vs one batched EnergySnapshot.
        record("getters_string", nsPerOp(iters, [&](int) {
                   return rig.eco.getSolarPower("app0") +
                          rig.eco.getGridPower("app0") +
                          rig.eco.getGridCarbon() +
                          rig.eco.getBatteryDischargeRate("app0") +
                          rig.eco.getBatteryChargeLevel("app0");
               }));
        record("getters_handle", nsPerOp(iters, [&](int) {
                   return rig.eco.getSolarPower(app0).value() +
                          rig.eco.getGridPower(app0).value() +
                          rig.eco.getGridCarbon() +
                          rig.eco.getBatteryDischargeRate(app0)
                              .value() +
                          rig.eco.getBatteryChargeLevel(app0).value();
               }));
        record("getters_snapshot", nsPerOp(iters, [&](int) {
                   const api::EnergySnapshot s =
                       rig.eco.getEnergySnapshot(app0).value();
                   return s.solar_w + s.grid_w +
                          s.grid_carbon_g_per_kwh +
                          s.battery_discharge_w +
                          s.battery_charge_level_wh;
               }));

        record("get_container_power", nsPerOp(iters, [&](int) {
                   return rig.eco.getContainerPower(rig.ids.front());
               }));
        record("set_container_powercap", nsPerOp(iters, [&](int i) {
                   rig.eco.setContainerPowercap(
                       rig.ids.front(), 0.5 + 0.1 * (i % 8));
                   return 0.0;
               }));
        record("set_battery_charge_rate", nsPerOp(iters, [&](int i) {
                   rig.eco.setBatteryChargeRate(
                       "app0", static_cast<double>(i % 11) * 10.0);
                   return 0.0;
               }));
        record("set_battery_charge_rate_handle",
               nsPerOp(iters, [&](int i) {
                   rig.eco
                       .setBatteryChargeRate(
                           app0, static_cast<double>(i % 11) * 10.0)
                       .orFatal();
                   return 0.0;
               }));
    }

    struct SettleShape
    {
        int apps;
        int per_app;
        const char *key;
    };
    for (const auto &shape :
         {SettleShape{1, 4, "settle_tick_1x4"},
          SettleShape{4, 8, "settle_tick_4x8"},
          SettleShape{8, 16, "settle_tick_8x16"}}) {
        Rig rig(64, shape.apps, shape.per_app);
        TimeS t_now = 0;
        record(shape.key, nsPerOp(settle_iters, [&](int) {
                   rig.eco.settleTick(t_now, 60);
                   t_now += 60;
                   return 0.0;
               }));
    }

    // The same settle shapes with telemetry recording ON: the delta
    // over the rows above is the full per-tick recording cost on the
    // interned SeriesId path (11 series + 2 per container here).
    for (const auto &shape :
         {SettleShape{4, 8, "settle_tick_4x8_telemetry"},
          SettleShape{8, 16, "settle_tick_8x16_telemetry"}}) {
        Rig rig(64, shape.apps, shape.per_app,
                /*record_telemetry=*/true);
        TimeS t_now = 0;
        record(shape.key, nsPerOp(settle_iters, [&](int) {
                   rig.eco.settleTick(t_now, 60);
                   t_now += 60;
                   return 0.0;
               }));
    }

    if (opt.print_figures) {
        std::printf("=== Microbenchmark: ecovisor API overhead ===\n\n");
        t.print();
        std::printf("\nSanity check: every operation must be orders "
                    "of magnitude cheaper than the 60 s tick, and the "
                    "handle paths must beat their string twins.\n");
    }
    return out;
}

const ScenarioRegistrar reg({
    "micro_api_overhead",
    "Microbenchmark: ns/op for the Table 1 getters/setters and "
    "per-tick settlement (perf-only)",
    /*default_seed=*/1,
    {},
    run,
});

} // namespace
} // namespace ecov::bench
