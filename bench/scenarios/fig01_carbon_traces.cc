/**
 * @file
 * Figure 1 scenario: grid carbon intensity for three regions
 * (Ontario, California, Uruguay), showing spatial and temporal
 * variation. Metrics are the per-region summary statistics the figure
 * visualizes; `--figures` additionally prints the hourly series.
 */

#include <cstdio>

#include "carbon/region_traces.h"
#include "common/registry.h"
#include "util/stats.h"
#include "util/table.h"

namespace ecov::bench {
namespace {

ScenarioOutcome
run(const ScenarioOptions &opt)
{
    const int days = opt.horizon == Horizon::Short ? 2 : 4;

    struct Region
    {
        const char *key;   ///< metric prefix
        const char *name;  ///< display name
        carbon::RegionProfile profile;
    };
    const Region regions[] = {
        {"ontario", "Ontario, Canada", carbon::ontarioProfile()},
        {"california", "California", carbon::californiaProfile()},
        {"uruguay", "Uruguay", carbon::uruguayProfile()},
    };

    std::vector<carbon::TraceCarbonSignal> traces;
    for (const auto &r : regions)
        traces.push_back(carbon::makeRegionTrace(r.profile, days, opt.seed));

    ScenarioOutcome out;
    TextTable summary({"region", "mean", "stddev", "min", "max"});
    for (std::size_t i = 0; i < traces.size(); ++i) {
        RunningStats st;
        for (const auto &p : traces[i].points())
            st.add(p.intensity_g_per_kwh);
        out.metric(std::string(regions[i].key) + "_mean_gkwh", st.mean());
        out.metric(std::string(regions[i].key) + "_stddev_gkwh",
                   st.stddev());
        out.metric(std::string(regions[i].key) + "_max_gkwh", st.max());
        summary.addRow({regions[i].name, TextTable::fmt(st.mean(), 1),
                        TextTable::fmt(st.stddev(), 1),
                        TextTable::fmt(st.min(), 1),
                        TextTable::fmt(st.max(), 1)});
    }

    if (opt.print_figures) {
        std::printf("=== Figure 1: grid carbon intensity by region "
                    "(gCO2/kWh) ===\n\n");
        summary.print();
        std::printf("\nHourly series over %d days "
                    "(time_h,ontario,california,uruguay):\n",
                    days);
        CsvWriter csv(stdout,
                      {"time_h", "ontario", "california", "uruguay"});
        for (TimeS t = 0; t < days * 24 * 3600; t += 3600) {
            csv.row({static_cast<double>(t) / 3600.0,
                     traces[0].intensityAt(t), traces[1].intensityAt(t),
                     traces[2].intensityAt(t)});
        }
        std::printf("\nPaper shape check: Ontario lowest & flattest "
                    "(nuclear), Uruguay mid (hydro), California "
                    "highest mean and variance (fossil + solar duck "
                    "curve).\n");
    }
    return out;
}

const ScenarioRegistrar reg({
    "fig01_carbon_traces",
    "Figure 1: grid carbon intensity by region (Ontario, California, "
    "Uruguay)",
    /*default_seed=*/42,
    {},
    run,
});

} // namespace
} // namespace ecov::bench
