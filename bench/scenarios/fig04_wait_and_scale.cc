/**
 * @file
 * Figure 4 scenario: carbon emissions and runtime for the ML training
 * job (a) and BLAST (b) under the carbon-agnostic baseline, the
 * system-level suspend-resume policy (WaitAWhile), and the
 * application-specific Wait&Scale policy at several scale factors.
 * Full horizon runs each configuration ten times at random arrivals
 * (as the paper's error bars do); short horizon runs three repeats of
 * quarter-size jobs.
 */

#include <cstdio>
#include <vector>

#include "common/registry.h"
#include "common/scenarios.h"
#include "common/series_stats.h"
#include "util/table.h"

namespace ecov::bench {
namespace {

BatchRunConfig
cfg(BatchPolicyKind kind, double scale, double pct, std::uint64_t seed)
{
    BatchRunConfig c;
    c.kind = kind;
    c.scale = scale;
    c.threshold_pct = pct;
    c.trace_seed = seed;
    return c;
}

struct Row
{
    const char *label; ///< table label
    const char *key;   ///< metric prefix
    BatchRunConfig config;
};

void
runFamily(const ScenarioOptions &opt, const char *title,
          const char *family, const wl::BatchJobConfig &job,
          const std::vector<Row> &rows, ScenarioOutcome *out)
{
    const int repeats = opt.horizon == Horizon::Short ? 3 : 10;
    const ScenarioTuning tuning = tuningFor(opt);

    TextTable t({"policy", "co2_g(mean)", "co2_g(std)",
                 "runtime_h(mean)", "runtime_h(std)"});
    for (const auto &row : rows) {
        auto agg = aggregateBatchRuns(job, row.config, repeats,
                                      /*arrival_seed=*/7, tuning);
        std::string prefix =
            std::string(family) + "_" + row.key + "_";
        out->metric(prefix + "carbon_g", agg.mean_carbon_g);
        out->metric(prefix + "runtime_h", agg.mean_runtime_h);
        t.addRow({row.label, TextTable::fmt(agg.mean_carbon_g, 2),
                  TextTable::fmt(agg.std_carbon_g, 2),
                  TextTable::fmt(agg.mean_runtime_h, 2),
                  TextTable::fmt(agg.std_runtime_h, 2)});
    }
    if (opt.print_figures) {
        std::printf("\n--- %s ---\n", title);
        t.print();
    }
}

ScenarioOutcome
run(const ScenarioOptions &opt)
{
    if (opt.print_figures)
        std::printf("=== Figure 4: carbon reduction policies for "
                    "batch jobs ===\n");

    const double work_scale =
        opt.horizon == Horizon::Short ? 0.25 : 1.0;
    ScenarioOutcome out;

    // (a) PyTorch-style ML training: 4 base workers, sync-limited.
    auto ml = wl::mlTrainingConfig("ml", 4.0 * 5.0 * 3600.0 * work_scale);
    runFamily(opt, "(a) ML training (ResNet-34-like scaling)", "ml", ml,
              {{"CO2-agnostic", "agnostic",
                cfg(BatchPolicyKind::Agnostic, 1, 30, opt.seed)},
               {"System (suspend-resume)", "suspend",
                cfg(BatchPolicyKind::SuspendResume, 1, 30, opt.seed)},
               {"W&S (2X)", "ws2x",
                cfg(BatchPolicyKind::WaitAndScale, 2, 30, opt.seed)},
               {"W&S (3X)", "ws3x",
                cfg(BatchPolicyKind::WaitAndScale, 3, 30, opt.seed)}},
              &out);

    // (b) BLAST: 8 base workers, near-linear to 3x.
    auto blast = wl::blastConfig("blast", 8.0 * 2.0 * 3600.0 * work_scale);
    runFamily(opt,
              "(b) BLAST (embarrassingly parallel, queue-server "
              "bottleneck at 3X)",
              "blast", blast,
              {{"CO2-agnostic", "agnostic",
                cfg(BatchPolicyKind::Agnostic, 1, 33, opt.seed)},
               {"System (suspend-resume)", "suspend",
                cfg(BatchPolicyKind::SuspendResume, 1, 33, opt.seed)},
               {"W&S (2X)", "ws2x",
                cfg(BatchPolicyKind::WaitAndScale, 2, 33, opt.seed)},
               {"W&S (3X)", "ws3x",
                cfg(BatchPolicyKind::WaitAndScale, 3, 33, opt.seed)},
               {"W&S (4X)", "ws4x",
                cfg(BatchPolicyKind::WaitAndScale, 4, 33, opt.seed)}},
              &out);

    if (opt.print_figures)
        std::printf(
            "\nPaper shape check: agnostic = fastest, dirtiest; "
            "suspend-resume cuts CO2 ~25%% at a large runtime "
            "penalty;\nW&S matches the CO2 cut at much lower runtime; "
            "ML stops gaining past 2X; BLAST keeps gaining to 3X, 4X "
            "adds CO2 only.\n");
    return out;
}

const ScenarioRegistrar reg({
    "fig04_wait_and_scale",
    "Figure 4: carbon reduction policies for batch jobs (agnostic vs "
    "suspend-resume vs Wait&Scale)",
    /*default_seed=*/11,
    {},
    run,
});

} // namespace
} // namespace ecov::bench
