/**
 * @file
 * Figure 6 scenario: static carbon rate limiting vs dynamic carbon
 * budgeting for two concurrent web applications over a 48 h trace
 * whose late peak overlaps a high-carbon period. Metrics are each
 * app's SLO-violation count and total carbon under both policies plus
 * the headline reduction percentages; `--figures` prints the context
 * and latency series.
 */

#include <algorithm>
#include <cstdio>

#include "common/registry.h"
#include "common/scenarios.h"
#include "common/series_stats.h"
#include "util/table.h"

namespace ecov::bench {
namespace {

ScenarioOutcome
run(const ScenarioOptions &opt)
{
    const ScenarioTuning tuning = tuningFor(opt);
    auto st = runWebBudgetScenario(false, opt.seed, tuning);
    auto dy = runWebBudgetScenario(true, opt.seed, tuning);

    ScenarioOutcome out;
    out.metric("static_web1_slo_violations",
               static_cast<double>(st.app1.slo_violations));
    out.metric("static_web2_slo_violations",
               static_cast<double>(st.app2.slo_violations));
    out.metric("dynamic_web1_slo_violations",
               static_cast<double>(dy.app1.slo_violations));
    out.metric("dynamic_web2_slo_violations",
               static_cast<double>(dy.app2.slo_violations));
    out.metric("static_web1_carbon_g", st.app1.carbon_g);
    out.metric("static_web2_carbon_g", st.app2.carbon_g);
    out.metric("dynamic_web1_carbon_g", dy.app1.carbon_g);
    out.metric("dynamic_web2_carbon_g", dy.app2.carbon_g);

    double red1 = 100.0 * (1.0 - dy.app1.carbon_g / st.app1.carbon_g);
    double red2 = 100.0 * (1.0 - dy.app2.carbon_g / st.app2.carbon_g);
    out.metric("web1_carbon_reduction_pct", red1);
    out.metric("web2_carbon_reduction_pct", red2);

    if (opt.print_figures) {
        std::printf("=== Figure 6: carbon budgeting for web services "
                    "===\n");

        std::printf("\n(a) context series "
                    "(time_h,carbon_gkwh,load1_rps,load2_rps):\n");
        {
            CsvWriter csv(stdout,
                          {"time_h", "carbon_gkwh", "load1", "load2"});
            const auto &cs = st.carbon_signal;
            // Guard the workload series: when a measurement series
            // comes back empty, size() - 1 would wrap around.
            const std::size_t n = std::min(st.app1.workload_rps.size(),
                                           st.app2.workload_rps.size());
            for (std::size_t i = 0; i < cs.size() && n > 0; i += 30) {
                std::size_t j = std::min(i, n - 1);
                csv.row({static_cast<double>(cs[i].first) / 3600.0,
                         cs[i].second, st.app1.workload_rps[j].second,
                         st.app2.workload_rps[j].second});
            }
        }

        auto printLatency = [](const char *title,
                               const WebAppMeasurements &sys,
                               const WebAppMeasurements &app,
                               double slo) {
            std::printf("\n%s (time_h,system_p95_ms,dynamic_p95_ms,"
                        "slo_ms):\n",
                        title);
            CsvWriter csv(stdout,
                          {"time_h", "system", "dynamic", "slo"});
            std::size_t n = std::min(sys.latency_p95_ms.size(),
                                     app.latency_p95_ms.size());
            for (std::size_t i = 0; i < n; i += 30) {
                csv.row({static_cast<double>(
                             sys.latency_p95_ms[i].first) / 3600.0,
                         sys.latency_p95_ms[i].second,
                         app.latency_p95_ms[i].second, slo});
            }
        };
        printLatency("(b) web app 1 p95 latency", st.app1, dy.app1,
                     60.0);
        printLatency("(c) web app 2 p95 latency", st.app2, dy.app2,
                     70.0);

        std::printf("\nSummary:\n");
        TextTable t({"app", "policy", "slo_violations", "total_co2_g"});
        t.addRow({"web1", "system (static rate)",
                  std::to_string(st.app1.slo_violations),
                  TextTable::fmt(st.app1.carbon_g, 2)});
        t.addRow({"web1", "dynamic budget",
                  std::to_string(dy.app1.slo_violations),
                  TextTable::fmt(dy.app1.carbon_g, 2)});
        t.addRow({"web2", "system (static rate)",
                  std::to_string(st.app2.slo_violations),
                  TextTable::fmt(st.app2.carbon_g, 2)});
        t.addRow({"web2", "dynamic budget",
                  std::to_string(dy.app2.slo_violations),
                  TextTable::fmt(dy.app2.carbon_g, 2)});
        t.print();

        std::printf("\nDynamic budgeting carbon reduction: web1 "
                    "%.1f%%, web2 %.1f%% (paper: 22.8%% and "
                    "23.4%%).\n",
                    red1, red2);
        std::printf("Paper shape check: the static policy violates "
                    "the SLO when high carbon meets high load; the "
                    "dynamic policy banks credits and never "
                    "violates.\n");
    }
    return out;
}

const ScenarioRegistrar reg({
    "fig06_carbon_budget",
    "Figure 6: static carbon rate limiting vs dynamic carbon budgeting "
    "for two web apps",
    /*default_seed=*/21,
    {},
    run,
});

} // namespace
} // namespace ecov::bench
