/**
 * @file
 * Figure 10 scenario: running a 10-worker parallel job directly on
 * solar power with per-container power caps. Sweeps available
 * renewable power and records the runtime improvement of dynamic over
 * static caps plus energy efficiency at each point. Short horizon
 * sweeps two points instead of five.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/registry.h"
#include "common/scenarios.h"
#include "common/series_stats.h"
#include "util/table.h"

namespace ecov::bench {
namespace {

ScenarioOutcome
run(const ScenarioOptions &opt)
{
    const ScenarioTuning tuning = tuningFor(opt);
    ScenarioOutcome out;

    // (a) + (b): one representative day at 50 % solar.
    auto dyn = runSolarCapScenario(SolarPolicyKind::DynamicCaps, 50.0,
                                   opt.seed, false, tuning);
    if (opt.print_figures) {
        std::printf("=== Figure 10: direct solar exploitation via "
                    "vertical scaling ===\n");
        std::printf("\n(a) solar power (time_h,watts) and (b) mean "
                    "container cap (time_h,watts):\n");
        CsvWriter csv(stdout, {"time_h", "solar_w", "mean_cap_w"});
        std::size_t n =
            std::min(dyn.solar_w.size(), dyn.container_caps_w.size());
        for (std::size_t i = 0; i < n; i += 30) {
            csv.row({static_cast<double>(dyn.solar_w[i].first) / 3600.0,
                     dyn.solar_w[i].second,
                     dyn.container_caps_w[i].second});
        }
    }

    // (c): sweep available renewable power. The paper sweeps 10-90 %;
    // below ~25 % our power model cannot even cover the ten workers'
    // aggregate idle-share power, so the feasible sweep starts at 30 %.
    const std::vector<double> sweep =
        opt.horizon == Horizon::Short
            ? std::vector<double>{45.0, 90.0}
            : std::vector<double>{30.0, 45.0, 60.0, 75.0, 90.0};

    TextTable t({"solar_pct", "static_runtime_h", "dynamic_runtime_h",
                 "runtime_improvement_pct", "energy_eff_1_per_kj"});
    for (double pct : sweep) {
        auto st = runSolarCapScenario(SolarPolicyKind::StaticCaps, pct,
                                      opt.seed, false, tuning);
        auto dy = runSolarCapScenario(SolarPolicyKind::DynamicCaps, pct,
                                      opt.seed, false, tuning);
        double improvement =
            100.0 * (1.0 - static_cast<double>(dy.runtime_s) /
                               static_cast<double>(st.runtime_s));
        // Energy efficiency: useful work per joule (scaled to 1/kJ).
        double eff = dy.useful_work / (dy.energy_wh * 3600.0) * 1000.0;

        const std::string prefix =
            "p" + std::to_string(static_cast<int>(pct)) + "_";
        out.metric(prefix + "static_runtime_h",
                   static_cast<double>(st.runtime_s) / 3600.0);
        out.metric(prefix + "dynamic_runtime_h",
                   static_cast<double>(dy.runtime_s) / 3600.0);
        out.metric(prefix + "runtime_improvement_pct", improvement);
        out.metric(prefix + "energy_eff_1_per_kj", eff);

        t.addRow({TextTable::fmt(pct, 0),
                  TextTable::fmt(st.runtime_s / 3600.0, 2),
                  TextTable::fmt(dy.runtime_s / 3600.0, 2),
                  TextTable::fmt(improvement, 1),
                  TextTable::fmt(eff, 3)});
    }
    if (opt.print_figures) {
        std::printf("\n(c) sweep over available renewable power:\n");
        t.print();
        std::printf(
            "\nPaper shape check: the dynamic policy's runtime "
            "advantage grows as solar shrinks (rebalancing matters "
            "most under scarcity); energy-efficiency rises with solar "
            "as idle power is amortized over more work.\n");
    }
    return out;
}

const ScenarioRegistrar reg({
    "fig10_solar_caps",
    "Figure 10: direct solar exploitation via per-container power caps "
    "(static vs dynamic, solar sweep)",
    /*default_seed=*/13,
    {},
    run,
});

} // namespace
} // namespace ecov::bench
