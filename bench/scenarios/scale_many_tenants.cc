/**
 * @file
 * Scale scenario: many independent tenants with churning containers.
 *
 * N apps (N in {16, 64, 256}), each owning a small pool of containers
 * that churns deterministically (oldest destroyed, replacement
 * created) under a seeded RNG, run for a fixed horizon. This is the
 * structure the COP hot path must sustain: per-tick settlement walks
 * every app's containers, so an O(apps x containers) substrate melts
 * down exactly here while the slab's per-app index walks stay
 * O(containers). Domain metrics (carbon, container counts, churn
 * totals) are pure functions of (seed, horizon, tick) and participate
 * in the baseline diff; ticks/sec per tenant count is the perf metric
 * the COP overhaul is measured by.
 *
 * Telemetry recording is disabled so the timed loop is settlement
 * itself, not telemetry string formatting.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "carbon/carbon_signal.h"
#include "common/registry.h"
#include "core/ecovisor.h"
#include "sim/simulation.h"
#include "util/rng.h"
#include "util/table.h"

namespace ecov::bench {
namespace {

/** One tenant-count configuration of the shared-cluster world. */
struct World
{
    carbon::TraceCarbonSignal signal;
    energy::GridConnection grid;
    energy::SolarArray solar;
    cop::Cluster cluster;
    energy::PhysicalEnergySystem phys;
    core::Ecovisor eco;
    std::vector<std::string> names;
    std::vector<std::vector<cop::ContainerId>> pools;

    explicit World(int tenants)
        : signal({{0, 100.0}, {3600, 300.0}, {7200, 50.0}}, 10800),
          grid(&signal),
          solar({{0, 0.0}, {6 * 3600, 200.0}, {18 * 3600, 0.0}},
                24 * 3600),
          cluster(tenants, power::ServerPowerConfig{8, 1.35, 5.0, 0.0}),
          phys(&grid, &solar, energy::BatteryConfig{}),
          eco(&cluster, &phys,
              core::EcovisorOptions{core::ExcessSolarPolicy::Curtail,
                                    /*record_telemetry=*/false})
    {
        const double n = static_cast<double>(tenants);
        names.reserve(static_cast<std::size_t>(tenants));
        pools.resize(static_cast<std::size_t>(tenants));
        for (int a = 0; a < tenants; ++a) {
            char buf[16];
            std::snprintf(buf, sizeof buf, "t%04d", a);
            names.emplace_back(buf);
            core::AppShareConfig share;
            share.solar_fraction = 0.9 / n;
            energy::BatteryConfig b;
            b.capacity_wh = 1440.0 / n;
            b.max_charge_w = 360.0 / n;
            b.max_discharge_w = 1440.0 / n;
            b.initial_soc = 0.5;
            share.battery = b;
            eco.addApp(names.back(), share);
            for (int c = 0; c < 3; ++c) {
                auto id = cluster.createContainer(names.back(), 1.0);
                if (id)
                    pools[static_cast<std::size_t>(a)].push_back(*id);
            }
        }
    }
};

ScenarioOutcome
run(const ScenarioOptions &opt)
{
    const std::int64_t ticks =
        opt.horizon == Horizon::Short ? 240 : 2880;

    ScenarioOutcome out;
    out.metric("horizon_ticks", static_cast<double>(ticks));

    TextTable t({"tenants", "containers", "churn_events", "carbon_g",
                 "ticks_per_sec"});
    for (int tenants : {16, 64, 256}) {
        World w(tenants);
        Rng churn(opt.seed + static_cast<std::uint64_t>(tenants));

        sim::Simulation simul(opt.tick_s);
        std::int64_t churn_events = 0;
        // Workload phase: churn a small fraction of pools, then set
        // every container's demand from cheap deterministic
        // arithmetic keyed by (tenant, pool position, tick) — stable
        // across COP-internal representation changes.
        std::int64_t tick_no = 0;
        simul.addListener(
            [&](TimeS, TimeS) {
                for (std::size_t a = 0; a < w.pools.size(); ++a) {
                    auto &pool = w.pools[a];
                    if (!pool.empty() && churn.bernoulli(0.05)) {
                        w.cluster.destroyContainer(pool.front());
                        pool.erase(pool.begin());
                        auto id = w.cluster.createContainer(
                            w.names[a], 1.0);
                        if (id)
                            pool.push_back(*id);
                        ++churn_events;
                    }
                    for (std::size_t c = 0; c < pool.size(); ++c) {
                        double phase = static_cast<double>(
                            (tick_no * 31 +
                             static_cast<std::int64_t>(a) * 13 +
                             static_cast<std::int64_t>(c) * 7) %
                            97);
                        w.cluster.setDemand(pool[c],
                                            0.2 + 0.6 * phase / 97.0);
                    }
                }
                ++tick_no;
            },
            sim::TickPhase::Workload);
        w.eco.attach(simul);

        const auto wall0 = std::chrono::steady_clock::now();
        simul.runTicks(ticks);
        const double wall_s =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - wall0)
                .count();

        double carbon_g = 0.0;
        int containers = 0;
        for (const auto &name : w.names) {
            carbon_g += w.eco.ves(name).totalCarbonG();
            containers += static_cast<int>(
                w.cluster.appContainers(name).size());
        }
        const std::string sfx = "_" + std::to_string(tenants);
        out.metric("carbon_g" + sfx, carbon_g);
        out.metric("live_containers" + sfx, containers);
        out.metric("churn_events" + sfx,
                   static_cast<double>(churn_events));
        const double tps =
            wall_s > 0.0 ? static_cast<double>(ticks) / wall_s : 0.0;
        out.perfMetric("ticks_per_sec" + sfx, tps);
        t.addRow({std::to_string(tenants), std::to_string(containers),
                  std::to_string(churn_events),
                  TextTable::fmt(carbon_g, 2), TextTable::fmt(tps, 0)});
    }

    if (opt.print_figures) {
        std::printf("=== Scale: many tenants, churning containers "
                    "===\n\n");
        t.print();
        std::printf("\nThroughput must grow ~linearly with tenant "
                    "count under the slab substrate; an O(apps x "
                    "containers) walk collapses at 256 tenants.\n");
    }
    return out;
}

const ScenarioRegistrar reg({
    "scale_many_tenants",
    "Scale: N in {16,64,256} tenants with churning container pools; "
    "settlement throughput vs tenant count",
    /*default_seed=*/7,
    {},
    run,
});

} // namespace
} // namespace ecov::bench
