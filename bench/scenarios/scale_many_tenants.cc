/**
 * @file
 * Scale scenario: many independent tenants with churning containers.
 *
 * N apps (N in {16, 64, 256}), each owning a small pool of containers
 * that churns deterministically (oldest destroyed, replacement
 * created) under a seeded RNG, run for a fixed horizon. This is the
 * structure the COP hot path must sustain: per-tick settlement walks
 * every app's containers, so an O(apps x containers) substrate melts
 * down exactly here while the slab's per-app index walks stay
 * O(containers). Domain metrics (carbon, container counts, churn
 * totals) are pure functions of (seed, horizon, tick) and participate
 * in the baseline diff; ticks/sec per tenant count is the perf metric
 * the COP overhaul is measured by.
 *
 * Two registered scenarios share the world:
 *
 *  - `scale_many_tenants`: telemetry recording disabled, so the timed
 *    loop is settlement itself (the original COP-overhaul canary).
 *  - `scale_many_tenants_telemetry`: recording ON — the telemetry
 *    pipeline's canary. Each tenant count runs twice, once on the
 *    interned SeriesId fast path and once on the legacy string-keyed
 *    shim, timing both; the interned path is what makes always-on
 *    telemetry affordable at 256 tenants. Sample/series totals are
 *    deterministic domain metrics; both paths produce bit-identical
 *    stores (asserted by the telemetry_pipeline suite).
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "carbon/carbon_signal.h"
#include "common/registry.h"
#include "core/ecovisor.h"
#include "sim/simulation.h"
#include "util/rng.h"
#include "util/table.h"

namespace ecov::bench {
namespace {

/** One tenant-count configuration of the shared-cluster world. */
struct World
{
    carbon::TraceCarbonSignal signal;
    energy::GridConnection grid;
    energy::SolarArray solar;
    cop::Cluster cluster;
    energy::PhysicalEnergySystem phys;
    core::Ecovisor eco;
    std::vector<std::string> names;
    std::vector<std::vector<cop::ContainerId>> pools;

    World(int tenants, const core::EcovisorOptions &eco_opts)
        : signal({{0, 100.0}, {3600, 300.0}, {7200, 50.0}}, 10800),
          grid(&signal),
          solar({{0, 0.0}, {6 * 3600, 200.0}, {18 * 3600, 0.0}},
                24 * 3600),
          cluster(tenants, power::ServerPowerConfig{8, 1.35, 5.0, 0.0}),
          phys(&grid, &solar, energy::BatteryConfig{}),
          eco(&cluster, &phys, eco_opts)
    {
        const double n = static_cast<double>(tenants);
        names.reserve(static_cast<std::size_t>(tenants));
        pools.resize(static_cast<std::size_t>(tenants));
        for (int a = 0; a < tenants; ++a) {
            char buf[16];
            std::snprintf(buf, sizeof buf, "t%04d", a);
            names.emplace_back(buf);
            core::AppShareConfig share;
            share.solar_fraction = 0.9 / n;
            energy::BatteryConfig b;
            b.capacity_wh = 1440.0 / n;
            b.max_charge_w = 360.0 / n;
            b.max_discharge_w = 1440.0 / n;
            b.initial_soc = 0.5;
            share.battery = b;
            eco.addApp(names.back(), share);
            for (int c = 0; c < 3; ++c) {
                auto id = cluster.createContainer(names.back(), 1.0);
                if (id)
                    pools[static_cast<std::size_t>(a)].push_back(*id);
            }
        }
    }
};

/** One timed run of the churn workload; returns wall seconds. */
double
driveWorld(World &w, const ScenarioOptions &opt, std::int64_t ticks,
           int tenants, std::int64_t *churn_events)
{
    Rng churn(opt.seed + static_cast<std::uint64_t>(tenants));

    sim::Simulation simul(opt.tick_s);
    *churn_events = 0;
    // Workload phase: churn a small fraction of pools, then set
    // every container's demand from cheap deterministic
    // arithmetic keyed by (tenant, pool position, tick) — stable
    // across COP-internal representation changes.
    std::int64_t tick_no = 0;
    simul.addListener(
        [&](TimeS, TimeS) {
            for (std::size_t a = 0; a < w.pools.size(); ++a) {
                auto &pool = w.pools[a];
                if (!pool.empty() && churn.bernoulli(0.05)) {
                    w.cluster.destroyContainer(pool.front());
                    pool.erase(pool.begin());
                    auto id = w.cluster.createContainer(
                        w.names[a], 1.0);
                    if (id)
                        pool.push_back(*id);
                    ++*churn_events;
                }
                for (std::size_t c = 0; c < pool.size(); ++c) {
                    double phase = static_cast<double>(
                        (tick_no * 31 +
                         static_cast<std::int64_t>(a) * 13 +
                         static_cast<std::int64_t>(c) * 7) %
                        97);
                    w.cluster.setDemand(pool[c],
                                        0.2 + 0.6 * phase / 97.0);
                }
            }
            ++tick_no;
        },
        sim::TickPhase::Workload);
    w.eco.attach(simul);

    const auto wall0 = std::chrono::steady_clock::now();
    simul.runTicks(ticks);
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - wall0)
        .count();
}

/** Deterministic world summary shared by both scenarios. */
void
recordWorldMetrics(World &w, const std::string &sfx,
                   std::int64_t churn_events, ScenarioOutcome *out,
                   double *carbon_out, int *containers_out)
{
    double carbon_g = 0.0;
    int containers = 0;
    for (const auto &name : w.names) {
        carbon_g += w.eco.ves(name).totalCarbonG();
        containers += static_cast<int>(
            w.cluster.appContainers(name).size());
    }
    out->metric("carbon_g" + sfx, carbon_g);
    out->metric("live_containers" + sfx, containers);
    out->metric("churn_events" + sfx,
                static_cast<double>(churn_events));
    *carbon_out = carbon_g;
    *containers_out = containers;
}

ScenarioOutcome
run(const ScenarioOptions &opt)
{
    const std::int64_t ticks =
        opt.horizon == Horizon::Short ? 240 : 2880;

    ScenarioOutcome out;
    out.metric("horizon_ticks", static_cast<double>(ticks));

    TextTable t({"tenants", "containers", "churn_events", "carbon_g",
                 "ticks_per_sec"});
    for (int tenants : {16, 64, 256}) {
        World w(tenants,
                core::EcovisorOptions{core::ExcessSolarPolicy::Curtail,
                                      /*record_telemetry=*/false});
        std::int64_t churn_events = 0;
        const double wall_s =
            driveWorld(w, opt, ticks, tenants, &churn_events);

        const std::string sfx = "_" + std::to_string(tenants);
        double carbon_g = 0.0;
        int containers = 0;
        recordWorldMetrics(w, sfx, churn_events, &out, &carbon_g,
                           &containers);
        const double tps =
            wall_s > 0.0 ? static_cast<double>(ticks) / wall_s : 0.0;
        out.perfMetric("ticks_per_sec" + sfx, tps);
        t.addRow({std::to_string(tenants), std::to_string(containers),
                  std::to_string(churn_events),
                  TextTable::fmt(carbon_g, 2), TextTable::fmt(tps, 0)});
    }

    if (opt.print_figures) {
        std::printf("=== Scale: many tenants, churning containers "
                    "===\n\n");
        t.print();
        std::printf("\nThroughput must grow ~linearly with tenant "
                    "count under the slab substrate; an O(apps x "
                    "containers) walk collapses at 256 tenants.\n");
    }
    return out;
}

ScenarioOutcome
runTelemetry(const ScenarioOptions &opt)
{
    const std::int64_t ticks =
        opt.horizon == Horizon::Short ? 240 : 2880;

    ScenarioOutcome out;
    out.metric("horizon_ticks", static_cast<double>(ticks));

    TextTable t({"tenants", "carbon_g", "series", "samples",
                 "tps_seriesid", "tps_strings", "speedup"});
    for (int tenants : {16, 64, 256}) {
        // SeriesId fast path, pre-sized from the known horizon.
        core::EcovisorOptions fast;
        fast.record_telemetry = true;
        fast.expected_ticks = ticks;
        World wf(tenants, fast);
        std::int64_t churn_events = 0;
        const double wall_fast =
            driveWorld(wf, opt, ticks, tenants, &churn_events);

        // Legacy string-keyed shim path: same seeded workload, so
        // the two stores are bit-identical (telemetry_pipeline
        // suite); only the recording cost differs.
        core::EcovisorOptions shim;
        shim.record_telemetry = true;
        shim.telemetry_via_strings = true;
        World ws(tenants, shim);
        std::int64_t churn_shim = 0;
        const double wall_shim =
            driveWorld(ws, opt, ticks, tenants, &churn_shim);

        const std::string sfx = "_" + std::to_string(tenants);
        double carbon_g = 0.0;
        int containers = 0;
        recordWorldMetrics(wf, sfx, churn_events, &out, &carbon_g,
                           &containers);

        // The store's shape is a pure function of (seed, horizon):
        // deterministic domain metrics the baseline diff gates.
        std::size_t samples = 0;
        const auto keys = wf.eco.db().keys();
        for (const auto &k : keys)
            samples +=
                wf.eco.db().series(k.measurement, k.tag).size();
        out.metric("telemetry_series" + sfx,
                   static_cast<double>(wf.eco.db().seriesCount()));
        out.metric("telemetry_samples" + sfx,
                   static_cast<double>(samples));

        const double tps_fast =
            wall_fast > 0.0
                ? static_cast<double>(ticks) / wall_fast
                : 0.0;
        const double tps_shim =
            wall_shim > 0.0
                ? static_cast<double>(ticks) / wall_shim
                : 0.0;
        out.perfMetric("ticks_per_sec" + sfx, tps_fast);
        out.perfMetric("ticks_per_sec_strings" + sfx, tps_shim);
        t.addRow({std::to_string(tenants), TextTable::fmt(carbon_g, 2),
                  std::to_string(wf.eco.db().seriesCount()),
                  std::to_string(samples), TextTable::fmt(tps_fast, 0),
                  TextTable::fmt(tps_shim, 0),
                  TextTable::fmt(
                      tps_shim > 0.0 ? tps_fast / tps_shim : 0.0, 2)});
    }

    if (opt.print_figures) {
        std::printf("=== Scale: many tenants with telemetry ON "
                    "===\n\n");
        t.print();
        std::printf("\nAlways-on telemetry is affordable only when "
                    "recording is index-addressed: the SeriesId path "
                    "must hold its lead over the string shim as "
                    "tenant count (and therefore series count) "
                    "grows.\n");
    }
    return out;
}

const ScenarioRegistrar reg({
    "scale_many_tenants",
    "Scale: N in {16,64,256} tenants with churning container pools; "
    "settlement throughput vs tenant count",
    /*default_seed=*/7,
    {},
    run,
});

const ScenarioRegistrar reg_telemetry({
    "scale_many_tenants_telemetry",
    "Scale: N in {16,64,256} tenants with telemetry recording ON; "
    "SeriesId fast path vs legacy string shim throughput",
    /*default_seed=*/7,
    {},
    runTelemetry,
});

} // namespace
} // namespace ecov::bench
