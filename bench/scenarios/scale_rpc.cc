/**
 * @file
 * Scale scenario: the full remote multi-tenant transport under load.
 *
 * 256 tenants, each on its OWN loopback connection to one ServerCore
 * (so 256 concurrent connections — double the 128-connection floor
 * the ecovisord acceptance sets). Every tenant registers its app and
 * spawns a 3-container pool over RPC, then drives per-tick demand
 * updates and periodic cap batches through the pipelined client API.
 * The per-tick arrival interleaving across connections is shuffled
 * with a seeded RNG — exercising exactly the coalescing path that
 * makes arrival order irrelevant.
 *
 * Domain metrics (baseline-diffed at --tolerance=0): total and
 * rank-weighted per-tenant carbon (the weighting catches any
 * tenant-permutation bug a plain sum would hide), live containers,
 * request/reply totals, and caps applied. All are pure functions of
 * (seed, horizon, tick) because the server commits mutations in
 * canonical (connection, request) order regardless of the shuffle.
 *
 * Perf metrics (warn-only): requests/sec through the full
 * encode→frame→decode→commit→respond path, and p95 request RTT —
 * send-to-reply wall time, which for coalesced requests includes the
 * tick wait, i.e. the latency a remote tenant actually observes.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "carbon/carbon_signal.h"
#include "common/registry.h"
#include "core/ecovisor.h"
#include "net/client.h"
#include "net/loopback.h"
#include "net/server.h"
#include "util/rng.h"
#include "util/table.h"

namespace ecov::bench {
namespace {

constexpr int kTenants = 256;
constexpr int kPoolSize = 3;

/** The scale_many_tenants world shape, supervised over RPC. */
struct World
{
    carbon::TraceCarbonSignal signal;
    energy::GridConnection grid;
    energy::SolarArray solar;
    cop::Cluster cluster;
    energy::PhysicalEnergySystem phys;
    core::Ecovisor eco;
    net::ServerCore server;
    std::vector<std::string> names;
    std::vector<std::unique_ptr<net::LoopbackTransport>> transports;
    std::vector<std::unique_ptr<net::Client>> clients;

    World()
        : signal({{0, 100.0}, {3600, 300.0}, {7200, 50.0}}, 10800),
          grid(&signal),
          solar({{0, 0.0}, {6 * 3600, 200.0}, {18 * 3600, 0.0}},
                24 * 3600),
          cluster(kTenants,
                  power::ServerPowerConfig{8, 1.35, 5.0, 0.0}),
          phys(&grid, &solar, energy::BatteryConfig{}),
          eco(&cluster, &phys,
              core::EcovisorOptions{core::ExcessSolarPolicy::Curtail,
                                    /*record_telemetry=*/false}),
          server(&eco)
    {
        names.reserve(kTenants);
        transports.reserve(kTenants);
        clients.reserve(kTenants);
        for (int a = 0; a < kTenants; ++a) {
            char buf[16];
            std::snprintf(buf, sizeof buf, "t%04d", a);
            names.emplace_back(buf);
            transports.push_back(
                std::make_unique<net::LoopbackTransport>(&server));
            clients.push_back(std::make_unique<net::Client>(
                transports.back().get()));
        }
    }

    core::AppShareConfig
    shareFor() const
    {
        const double n = static_cast<double>(kTenants);
        core::AppShareConfig share;
        share.solar_fraction = 0.9 / n;
        energy::BatteryConfig b;
        b.capacity_wh = 1440.0 / n;
        b.max_charge_w = 360.0 / n;
        b.max_discharge_w = 1440.0 / n;
        b.initial_soc = 0.5;
        share.battery = b;
        return share;
    }
};

struct RunTotals
{
    std::uint64_t requests = 0;
    std::uint64_t replies_ok = 0;
    std::uint64_t caps_applied = 0;
    double wall_s = 0.0;
    double p95_rtt_us = 0.0;
};

/** p95 of a sample vector (sorted in place); 0 when empty. */
double
p95us(std::vector<double> &rtts)
{
    if (rtts.empty())
        return 0.0;
    std::sort(rtts.begin(), rtts.end());
    const std::size_t idx = std::min(
        rtts.size() - 1,
        static_cast<std::size_t>(
            0.95 * static_cast<double>(rtts.size())));
    return rtts[idx] * 1e6;
}

void
drive(World &w, const ScenarioOptions &opt, std::int64_t ticks,
      RunTotals *totals)
{
    using Clock = std::chrono::steady_clock;
    Rng shuffle(opt.seed);

    struct Inflight
    {
        int tenant;
        std::uint32_t req;
        bool is_batch;
        Clock::time_point sent;
    };
    std::vector<Inflight> inflight;
    std::vector<double> rtts;
    rtts.reserve(static_cast<std::size_t>(ticks) * kTenants / 4);

    const auto wall0 = Clock::now();

    // Setup tick: every tenant registers and spawns its pool over
    // RPC, all committed in the first settlement.
    for (int a = 0; a < kTenants; ++a) {
        net::Client &c = *w.clients[a];
        c.sendRegisterApp(w.names[a], w.shareFor());
        for (int k = 0; k < kPoolSize; ++k)
            c.sendSpawnContainer(net::RemoteApp{0}, 1.0);
        totals->requests += 1 + kPoolSize;
    }
    w.eco.settleTick(0, opt.tick_s);
    for (int a = 0; a < kTenants; ++a) {
        net::Client &c = *w.clients[a];
        if (c.awaitApp(1).ok())
            ++totals->replies_ok;
        for (int r = 2; r < 2 + kPoolSize; ++r)
            if (c.awaitContainer(static_cast<std::uint32_t>(r)).ok())
                ++totals->replies_ok;
    }

    // Churn ticks: demand updates on every container, a cap batch on
    // a rotating 1/8th of the tenants, shuffled arrival order.
    std::vector<int> arrival;
    for (std::int64_t tick = 1; tick <= ticks; ++tick) {
        inflight.clear();
        arrival.clear();
        for (int a = 0; a < kTenants; ++a) {
            arrival.insert(arrival.end(), kPoolSize, a);
            if ((tick + a) % 8 == 0)
                arrival.push_back(a); // this tenant's batch slot
        }
        std::shuffle(arrival.begin(), arrival.end(),
                     shuffle.engine());

        std::vector<int> sent_demands(kTenants, 0);
        for (int a : arrival) {
            net::Client &c = *w.clients[a];
            Inflight f{a, 0, false, Clock::now()};
            if (sent_demands[a] < kPoolSize) {
                const int k = sent_demands[a]++;
                const double phase = static_cast<double>(
                    (tick * 31 + a * 13 + k * 7) % 97);
                f.req = c.sendSetDemand(
                    net::RemoteContainer{
                        static_cast<std::uint32_t>(k)},
                    0.2 + 0.6 * phase / 97.0);
            } else {
                std::vector<net::RemoteCap> caps;
                caps.reserve(kPoolSize);
                for (int k = 0; k < kPoolSize; ++k) {
                    const double cap = 2.0 +
                                       static_cast<double>(
                                           (tick * 17 + a * 5 + k) %
                                           23) /
                                           11.0;
                    caps.push_back(
                        {net::RemoteContainer{
                             static_cast<std::uint32_t>(k)},
                         cap});
                }
                f.req = c.sendApplyCapBatch(caps);
                f.is_batch = true;
            }
            inflight.push_back(f);
            ++totals->requests;
        }

        w.eco.settleTick(static_cast<TimeS>(tick) * opt.tick_s,
                         opt.tick_s);

        for (std::size_t i = 0; i < inflight.size(); ++i) {
            const Inflight &f = inflight[i];
            if (w.clients[f.tenant]->await(f.req).ok()) {
                ++totals->replies_ok;
                if (f.is_batch)
                    totals->caps_applied += kPoolSize;
            }
            // Sample RTTs (every 8th request) to bound memory on
            // long horizons; p95 over the sample.
            if (i % 8 == 0)
                rtts.push_back(std::chrono::duration<double>(
                                   Clock::now() - f.sent)
                                   .count());
        }
    }

    totals->wall_s = std::chrono::duration<double>(Clock::now() -
                                                   wall0)
                         .count();
    totals->p95_rtt_us = p95us(rtts);
}

ScenarioOutcome
run(const ScenarioOptions &opt)
{
    const std::int64_t ticks =
        opt.horizon == Horizon::Short ? 120 : 1440;

    World w;
    RunTotals totals;
    drive(w, opt, ticks, &totals);

    // Per-tenant carbon, plain and rank-weighted: the weighted sum
    // changes if per-tenant accounting is permuted or cross-wired,
    // which a total alone cannot detect.
    double carbon_g = 0.0;
    double carbon_weighted = 0.0;
    int containers = 0;
    for (int a = 0; a < kTenants; ++a) {
        const double c = w.eco.ves(w.names[a]).totalCarbonG();
        carbon_g += c;
        carbon_weighted += static_cast<double>(a + 1) * c;
        containers += static_cast<int>(
            w.cluster.appContainers(w.names[a]).size());
    }

    ScenarioOutcome out;
    out.metric("horizon_ticks", static_cast<double>(ticks));
    out.metric("connections",
               static_cast<double>(w.server.connectionCount()));
    out.metric("requests_total",
               static_cast<double>(totals.requests));
    out.metric("replies_ok", static_cast<double>(totals.replies_ok));
    out.metric("caps_applied",
               static_cast<double>(totals.caps_applied));
    out.metric("live_containers", static_cast<double>(containers));
    out.metric("carbon_g_total", carbon_g);
    out.metric("carbon_g_rank_weighted", carbon_weighted);

    const double rps =
        totals.wall_s > 0.0
            ? static_cast<double>(totals.requests) / totals.wall_s
            : 0.0;
    out.perfMetric("requests_per_sec", rps);
    out.perfMetric("p95_rtt_us", totals.p95_rtt_us);

    if (opt.print_figures) {
        std::printf("=== Scale: remote transport, %d tenant "
                    "connections ===\n\n",
                    kTenants);
        TextTable t({"connections", "requests", "ok", "caps",
                     "carbon_g", "req_per_sec", "p95_rtt_us"});
        t.addRow({std::to_string(w.server.connectionCount()),
                  std::to_string(totals.requests),
                  std::to_string(totals.replies_ok),
                  std::to_string(totals.caps_applied),
                  TextTable::fmt(carbon_g, 2), TextTable::fmt(rps, 0),
                  TextTable::fmt(totals.p95_rtt_us, 1)});
        t.print();
        std::printf("\nEvery domain metric is independent of the "
                    "seeded arrival shuffle: mutations commit in "
                    "canonical (connection, request) order at the "
                    "tick boundary.\n");
    }
    return out;
}

const ScenarioRegistrar reg({
    "scale_rpc",
    "Scale: 256 tenants on 256 loopback connections driving the "
    "ecovisord protocol; deterministic carbon/caps, requests/sec and "
    "p95 RTT",
    /*default_seed=*/7,
    {},
    run,
});

} // namespace
} // namespace ecov::bench
