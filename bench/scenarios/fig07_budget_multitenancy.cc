/**
 * @file
 * Figure 7 scenario: multi-tenancy of carbon budgeting policies —
 * achieved carbon rate and worker counts for both web applications
 * under the dynamic budgeting policy, against the static system
 * policy's target rate. Metrics are the mean achieved rates and
 * worker counts; `--figures` prints the series.
 */

#include <algorithm>
#include <cstdio>

#include "common/registry.h"
#include "common/scenarios.h"
#include "common/series_stats.h"
#include "util/table.h"

namespace ecov::bench {
namespace {

ScenarioOutcome
run(const ScenarioOptions &opt)
{
    const ScenarioTuning tuning = tuningFor(opt);
    auto st = runWebBudgetScenario(false, opt.seed, tuning);
    auto dy = runWebBudgetScenario(true, opt.seed, tuning);

    ScenarioOutcome out;
    out.metric("target_rate_mg_s", dy.target_rate_g_s * 1000.0);
    out.metric("dynamic_web1_mean_rate_mg_s",
               seriesMean(dy.app1.carbon_rate_g_s) * 1000.0);
    out.metric("dynamic_web2_mean_rate_mg_s",
               seriesMean(dy.app2.carbon_rate_g_s) * 1000.0);
    out.metric("static_web1_mean_rate_mg_s",
               seriesMean(st.app1.carbon_rate_g_s) * 1000.0);
    out.metric("dynamic_web1_mean_workers",
               seriesMean(dy.app1.workers));
    out.metric("dynamic_web2_mean_workers",
               seriesMean(dy.app2.workers));
    out.metric("static_web1_mean_workers",
               seriesMean(st.app1.workers));

    if (opt.print_figures) {
        std::printf("=== Figure 7: multi-tenant carbon budgeting ===\n");

        std::printf("\n(a) carbon rate (time_h,web1_mg_s,web2_mg_s,"
                    "system_mg_s,target_mg_s):\n");
        {
            CsvWriter csv(stdout, {"time_h", "web1", "web2",
                                   "system_web1", "target"});
            std::size_t n = std::min({dy.app1.carbon_rate_g_s.size(),
                                      dy.app2.carbon_rate_g_s.size(),
                                      st.app1.carbon_rate_g_s.size()});
            for (std::size_t i = 0; i < n; i += 30) {
                csv.row(
                    {static_cast<double>(
                         dy.app1.carbon_rate_g_s[i].first) / 3600.0,
                     dy.app1.carbon_rate_g_s[i].second * 1000.0,
                     dy.app2.carbon_rate_g_s[i].second * 1000.0,
                     st.app1.carbon_rate_g_s[i].second * 1000.0,
                     dy.target_rate_g_s * 1000.0});
            }
        }

        std::printf("\n(b) workers (time_h,web1_dynamic,web2_dynamic,"
                    "web1_system):\n");
        {
            CsvWriter csv(stdout, {"time_h", "web1_dyn", "web2_dyn",
                                   "web1_sys"});
            std::size_t n = std::min({dy.app1.workers.size(),
                                      dy.app2.workers.size(),
                                      st.app1.workers.size()});
            for (std::size_t i = 0; i < n; i += 30) {
                csv.row({static_cast<double>(dy.app1.workers[i].first) /
                             3600.0,
                         dy.app1.workers[i].second,
                         dy.app2.workers[i].second,
                         st.app1.workers[i].second});
            }
        }

        std::printf(
            "\nPaper shape check: dynamic apps run below the target "
            "rate most of the time (only enough workers for their "
            "SLO), while the system policy holds the rate regardless "
            "of load; the two apps' worker counts differ with their "
            "workloads.\n");
    }
    return out;
}

const ScenarioRegistrar reg({
    "fig07_budget_multitenancy",
    "Figure 7: multi-tenant carbon budgeting (achieved rates and "
    "worker counts vs the static target)",
    /*default_seed=*/21,
    {},
    run,
});

} // namespace
} // namespace ecov::bench
