/**
 * @file
 * Figure 11 scenario: straggler mitigation as a productive use of
 * excess solar energy. Sweeps available renewable power from 100 % to
 * 200 % and records the runtime improvement from replica-based
 * mitigation (vs the dynamic policy without replicas) and the
 * resulting energy-efficiency decline. Short horizon sweeps the two
 * endpoints only.
 */

#include <cstdio>
#include <vector>

#include "common/registry.h"
#include "common/scenarios.h"
#include "common/series_stats.h"
#include "util/table.h"

namespace ecov::bench {
namespace {

ScenarioOutcome
run(const ScenarioOptions &opt)
{
    const ScenarioTuning tuning = tuningFor(opt);
    const std::vector<double> sweep =
        opt.horizon == Horizon::Short
            ? std::vector<double>{100.0, 200.0}
            : std::vector<double>{100.0, 125.0, 150.0, 175.0, 200.0};

    ScenarioOutcome out;
    TextTable t({"solar_pct", "baseline_runtime_h",
                 "mitigated_runtime_h", "runtime_improvement_pct",
                 "energy_eff_1_per_kj", "replicas"});
    for (double pct : sweep) {
        auto base = runSolarCapScenario(SolarPolicyKind::DynamicCaps,
                                        pct, opt.seed, true, tuning);
        auto mit = runSolarCapScenario(
            SolarPolicyKind::StragglerMitigation, pct, opt.seed, true,
            tuning);
        double improvement =
            100.0 * (1.0 - static_cast<double>(mit.runtime_s) /
                               static_cast<double>(base.runtime_s));
        double eff =
            mit.useful_work / (mit.energy_wh * 3600.0) * 1000.0;

        const std::string prefix =
            "p" + std::to_string(static_cast<int>(pct)) + "_";
        out.metric(prefix + "baseline_runtime_h",
                   static_cast<double>(base.runtime_s) / 3600.0);
        out.metric(prefix + "mitigated_runtime_h",
                   static_cast<double>(mit.runtime_s) / 3600.0);
        out.metric(prefix + "runtime_improvement_pct", improvement);
        out.metric(prefix + "energy_eff_1_per_kj", eff);
        out.metric(prefix + "replicas",
                   static_cast<double>(mit.replicas));

        t.addRow({TextTable::fmt(pct, 0),
                  TextTable::fmt(base.runtime_s / 3600.0, 2),
                  TextTable::fmt(mit.runtime_s / 3600.0, 2),
                  TextTable::fmt(improvement, 1),
                  TextTable::fmt(eff, 3),
                  std::to_string(mit.replicas)});
    }

    if (opt.print_figures) {
        std::printf("=== Figure 11: straggler mitigation with excess "
                    "solar ===\n\n");
        t.print();
        std::printf(
            "\nPaper shape check: mitigation uses excess (otherwise "
            "curtailed) solar to run replicas — runtime improves with "
            "diminishing returns as solar grows, while "
            "energy-efficiency falls because replica work is "
            "discarded.\n");
    }
    return out;
}

const ScenarioRegistrar reg({
    "fig11_stragglers",
    "Figure 11: straggler mitigation with excess solar (replicas vs "
    "dynamic caps baseline)",
    /*default_seed=*/29,
    {},
    run,
});

} // namespace
} // namespace ecov::bench
