/**
 * @file
 * Scale scenario: month-scale horizons with telemetry ON — the
 * unbounded-telemetry memory cliff and its retention fix.
 *
 * Before bounded retention, every settled tick appended ~10 samples
 * per app forever: a long-horizon run's memory grew linearly with
 * ticks and the telemetry store eventually dominated (and on real
 * month-long horizons, exhausted) the process. This scenario is the
 * regression canary for the fix:
 *
 *  1. *Equivalence sweep*: a retention-bounded run and an unbounded
 *     shadow run over the same seeded workload, with every interval
 *     query whose window start lies inside the bounded run's exact
 *     (ring + cold block) coverage compared bit for bit. The
 *     mismatch counters are domain metrics gated at 0 by the
 *     baseline diff.
 *  2. *Bounded memory*: telemetry-ON runs at half and full horizon
 *     (>= 1M ticks at the full horizon) under a one-day retention
 *     window. Telemetry heap — measured exactly via
 *     TsDatabase::memoryBytes() — must be flat between the two
 *     (growth ratio ~1, O(window), not O(horizon)); peak process RSS
 *     is reported for the CI budget gate. Retained sample/block/
 *     bucket counts are deterministic domain metrics.
 *
 * No unbounded run at the long horizons, deliberately: it would
 * dominate peak RSS for the whole process and turn the budget gate
 * into a measurement of the bug instead of the fix. And no container
 * churn, also deliberately: retention bounds each series relative to
 * its *own* newest sample, so every destroyed container leaves a
 * (bounded) remnant store behind and memory would grow with the
 * churn count — a series-count axis that scale_many_tenants already
 * owns. A fixed container set makes memory flatness attributable to
 * retention alone.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#if defined(__linux__)
#include <sys/resource.h>
#endif

#include "carbon/carbon_signal.h"
#include "common/registry.h"
#include "core/ecovisor.h"
#include "sim/simulation.h"
#include "telemetry/ts_database.h"
#include "util/table.h"

namespace ecov::bench {
namespace {

/** One day: the retention window the bounded runs keep raw. */
constexpr TimeS kWindowS = 1440 * 60;

/** A small fixed tenant set; the scale axis here is ticks, not apps. */
constexpr int kTenants = 4;

struct World
{
    carbon::TraceCarbonSignal signal;
    energy::GridConnection grid;
    energy::SolarArray solar;
    cop::Cluster cluster;
    energy::PhysicalEnergySystem phys;
    core::Ecovisor eco;
    std::vector<std::string> names;
    std::vector<std::vector<cop::ContainerId>> pools;

    explicit World(const core::EcovisorOptions &eco_opts)
        : signal({{0, 100.0}, {3600, 300.0}, {7200, 50.0}}, 10800),
          grid(&signal),
          solar({{0, 0.0}, {6 * 3600, 200.0}, {18 * 3600, 0.0}},
                24 * 3600),
          cluster(kTenants,
                  power::ServerPowerConfig{8, 1.35, 5.0, 0.0}),
          phys(&grid, &solar, energy::BatteryConfig{}),
          eco(&cluster, &phys, eco_opts)
    {
        names.reserve(kTenants);
        pools.resize(kTenants);
        for (int a = 0; a < kTenants; ++a) {
            char buf[16];
            std::snprintf(buf, sizeof buf, "t%04d", a);
            names.emplace_back(buf);
            // Deliberately lean shares: at 4 tenants a generous
            // solar+battery split covers the whole ~1-2 W per-app
            // load and the carbon metric degenerates to a constant
            // 0. Lean shares leave the battery short of a full night,
            // so the grid is drawn daily and carbon stays a live
            // regression signal.
            core::AppShareConfig share;
            share.solar_fraction = 0.05 / kTenants;
            energy::BatteryConfig b;
            b.capacity_wh = 48.0 / kTenants;
            b.max_charge_w = 12.0 / kTenants;
            b.max_discharge_w = 48.0 / kTenants;
            b.initial_soc = 0.5;
            share.battery = b;
            eco.addApp(names.back(), share);
            for (int c = 0; c < 3; ++c) {
                auto id = cluster.createContainer(names.back(), 1.0);
                if (id)
                    pools[static_cast<std::size_t>(a)].push_back(*id);
            }
        }
    }
};

/** Month-scale workload over the fixed container set. */
double
driveWorld(World &w, const ScenarioOptions &opt, std::int64_t ticks)
{
    sim::Simulation simul(opt.tick_s);
    std::int64_t tick_no = 0;
    simul.addListener(
        [&](TimeS, TimeS) {
            for (std::size_t a = 0; a < w.pools.size(); ++a) {
                auto &pool = w.pools[a];
                for (std::size_t c = 0; c < pool.size(); ++c) {
                    double phase = static_cast<double>(
                        (tick_no * 31 +
                         static_cast<std::int64_t>(a) * 13 +
                         static_cast<std::int64_t>(c) * 7) %
                        97);
                    w.cluster.setDemand(pool[c],
                                        0.2 + 0.6 * phase / 97.0);
                }
            }
            ++tick_no;
        },
        sim::TickPhase::Workload);
    w.eco.attach(simul);

    const auto wall0 = std::chrono::steady_clock::now();
    simul.runTicks(ticks);
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - wall0)
        .count();
}

/** Peak process RSS in MB (Linux getrusage; 0 elsewhere). */
double
peakRssMb()
{
#if defined(__linux__)
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) == 0)
        return static_cast<double>(ru.ru_maxrss) / 1024.0;
#endif
    return 0.0;
}

/** Retained-store shape of one bounded database (deterministic). */
struct StoreShape
{
    std::size_t raw = 0, cold_blocks = 0, cold_samples = 0;
    std::size_t minute_buckets = 0, hour_buckets = 0;
    std::uint64_t total_appends = 0;
};

StoreShape
shapeOf(const ts::TsDatabase &db)
{
    StoreShape s;
    for (const auto &k : db.keys()) {
        const ts::TimeSeries &ser = db.series(k.measurement, k.tag);
        s.raw += ser.size();
        s.cold_blocks += ser.coldBlockCount();
        s.cold_samples += ser.coldSampleCount();
        s.minute_buckets += ser.minuteBucketCount();
        s.hour_buckets += ser.hourBucketCount();
        s.total_appends += ser.totalAppends();
    }
    return s;
}

double
totalCarbon(World &w)
{
    double carbon_g = 0.0;
    for (const auto &name : w.names)
        carbon_g += w.eco.ves(name).totalCarbonG();
    return carbon_g;
}

ScenarioOutcome
run(const ScenarioOptions &opt)
{
    // Full horizon: >= 1M ticks (~2 years of minute ticks) — the
    // regime where unbounded telemetry melted down.
    const std::int64_t full_ticks =
        opt.horizon == Horizon::Short ? 40000 : 1100000;
    const std::int64_t half_ticks = full_ticks / 2;
    const std::int64_t pair_ticks =
        opt.horizon == Horizon::Short ? 2000 : 5000;

    core::EcovisorOptions bounded_opts;
    bounded_opts.retention_window_s = kWindowS;

    ScenarioOutcome out;
    out.metric("horizon_ticks", static_cast<double>(full_ticks));

    // ------------------------------------------------------------------
    // 1. Equivalence sweep: bounded vs unbounded shadow, bit for bit
    //    wherever the bounded store still has exact coverage.
    // ------------------------------------------------------------------
    std::int64_t window_mismatches = 0;
    std::int64_t queries = 0;
    {
        World bounded(bounded_opts);
        World shadow(core::EcovisorOptions{});
        driveWorld(bounded, opt, pair_ticks);
        driveWorld(shadow, opt, pair_ticks);

        const TimeS horizon_s = pair_ticks * opt.tick_s;
        for (const auto &k : shadow.eco.db().keys()) {
            const ts::TimeSeries &bs =
                bounded.eco.db().series(k.measurement, k.tag);
            const ts::TimeSeries &us =
                shadow.eco.db().series(k.measurement, k.tag);
            const TimeS from =
                bs.hasRetired() ? bs.exactSince() : 0;
            for (int q = 0; q < 32; ++q) {
                const TimeS t1 =
                    from + ((horizon_s - from) * q) / 32;
                for (TimeS span : {TimeS{600}, TimeS{21600}}) {
                    ++queries;
                    if (bs.integrateWh(t1, t1 + span) !=
                            us.integrateWh(t1, t1 + span) ||
                        bs.sumRange(t1, t1 + span) !=
                            us.sumRange(t1, t1 + span) ||
                        bs.maxRange(t1, t1 + span) !=
                            us.maxRange(t1, t1 + span))
                        ++window_mismatches;
                }
            }
        }
    }
    out.metric("window_queries", static_cast<double>(queries));
    out.metric("window_query_mismatches",
               static_cast<double>(window_mismatches));

    // ------------------------------------------------------------------
    // 2. Bounded memory at half and full horizon. Separate scopes so
    //    each world's store is dead before the next is measured.
    // ------------------------------------------------------------------
    double heap_half = 0.0, heap_full = 0.0;
    double carbon_half = 0.0, carbon_full = 0.0;
    double wall_full = 0.0;
    StoreShape shape_half, shape_full;
    {
        World w(bounded_opts);
        driveWorld(w, opt, half_ticks);
        heap_half = static_cast<double>(w.eco.db().memoryBytes());
        carbon_half = totalCarbon(w);
        shape_half = shapeOf(w.eco.db());
    }
    {
        World w(bounded_opts);
        wall_full = driveWorld(w, opt, full_ticks);
        heap_full = static_cast<double>(w.eco.db().memoryBytes());
        carbon_full = totalCarbon(w);
        shape_full = shapeOf(w.eco.db());
    }

    out.metric("carbon_g_half", carbon_half);
    out.metric("carbon_g_full", carbon_full);
    out.metric("raw_samples_full",
               static_cast<double>(shape_full.raw));
    out.metric("cold_blocks_full",
               static_cast<double>(shape_full.cold_blocks));
    out.metric("cold_samples_full",
               static_cast<double>(shape_full.cold_samples));
    out.metric("minute_buckets_full",
               static_cast<double>(shape_full.minute_buckets));
    out.metric("hour_buckets_full",
               static_cast<double>(shape_full.hour_buckets));
    out.metric("total_appends_full",
               static_cast<double>(shape_full.total_appends));

    // Heap sizes track container growth policy (toolchain-dependent),
    // so they are perf metrics; flatness is the claim under test.
    const double growth =
        heap_half > 0.0 ? heap_full / heap_half : 0.0;
    out.perfMetric("telemetry_heap_bytes_half", heap_half);
    out.perfMetric("telemetry_heap_bytes_full", heap_full);
    out.perfMetric("telemetry_heap_growth_ratio", growth);
    out.perfMetric("peak_rss_mb", peakRssMb());
    out.perfMetric("ticks_per_sec_full",
                   wall_full > 0.0
                       ? static_cast<double>(full_ticks) / wall_full
                       : 0.0);

    if (opt.print_figures) {
        std::printf("=== Scale: long horizon, telemetry ON, bounded "
                    "retention ===\n\n");
        TextTable t({"quantity", "half", "full"});
        t.addRow({"ticks", std::to_string(half_ticks),
                  std::to_string(full_ticks)});
        t.addRow({"appended samples",
                  std::to_string(shape_half.total_appends),
                  std::to_string(shape_full.total_appends)});
        t.addRow({"retained raw", std::to_string(shape_half.raw),
                  std::to_string(shape_full.raw)});
        t.addRow({"cold blocks",
                  std::to_string(shape_half.cold_blocks),
                  std::to_string(shape_full.cold_blocks)});
        t.addRow({"telemetry heap (KiB)",
                  TextTable::fmt(heap_half / 1024.0, 1),
                  TextTable::fmt(heap_full / 1024.0, 1)});
        t.print();
        std::printf("\nquery equivalence: %lld/%lld windows "
                    "bit-identical to the unbounded shadow\n",
                    static_cast<long long>(queries -
                                           window_mismatches),
                    static_cast<long long>(queries));
        std::printf("heap growth ratio (full/half horizon): %.3f — "
                    "must stay ~1: the store is O(retention window), "
                    "not O(horizon). Peak RSS: %.1f MB.\n",
                    growth, peakRssMb());
    }
    return out;
}

const ScenarioRegistrar reg({
    "scale_long_horizon",
    "Scale: >= 1M-tick horizon with telemetry ON under a 1-day "
    "retention window; flat memory + bit-identical windowed queries",
    /*default_seed=*/7,
    {},
    run,
});

} // namespace
} // namespace ecov::bench
