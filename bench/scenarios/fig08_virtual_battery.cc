/**
 * @file
 * Figure 8 scenario: zero-carbon applications on shared solar +
 * virtual batteries. Metrics are the Spark runtime under static vs
 * dynamic battery policies (and the headline reduction), web SLO
 * violations, and total grid energy (which should stay ~0 for
 * zero-carbon apps); `--figures` prints the per-panel series.
 */

#include <algorithm>
#include <cstdio>

#include "common/registry.h"
#include "common/scenarios.h"
#include "common/series_stats.h"
#include "util/table.h"

namespace ecov::bench {
namespace {

void
printPair(const char *title, const Series &a, const char *name_a,
          const Series &b, const char *name_b, int every)
{
    std::printf("\n%s (time_h,%s,%s):\n", title, name_a, name_b);
    CsvWriter csv(stdout, {"time_h", name_a, name_b});
    std::size_t n = std::min(a.size(), b.size());
    for (std::size_t i = 0; i < n;
         i += static_cast<std::size_t>(every)) {
        csv.row({static_cast<double>(a[i].first) / 3600.0, a[i].second,
                 b[i].second});
    }
}

ScenarioOutcome
run(const ScenarioOptions &opt)
{
    const ScenarioTuning tuning = tuningFor(opt);
    auto st = runBatteryScenario(false, opt.seed, tuning);
    auto dy = runBatteryScenario(true, opt.seed, tuning);

    ScenarioOutcome out;
    out.metric("static_spark_runtime_h",
               static_cast<double>(st.spark_runtime_s) / 3600.0);
    out.metric("dynamic_spark_runtime_h",
               static_cast<double>(dy.spark_runtime_s) / 3600.0);
    out.metric("static_spark_completed",
               st.spark_completed ? 1.0 : 0.0);
    out.metric("dynamic_spark_completed",
               dy.spark_completed ? 1.0 : 0.0);
    out.metric("static_web_slo_violations",
               static_cast<double>(st.web_slo_violations));
    out.metric("dynamic_web_slo_violations",
               static_cast<double>(dy.web_slo_violations));
    out.metric("static_grid_wh", st.total_grid_wh);
    out.metric("dynamic_grid_wh", dy.total_grid_wh);

    double reduction =
        100.0 * (1.0 - static_cast<double>(dy.spark_runtime_s) /
                           static_cast<double>(st.spark_runtime_s));
    out.metric("spark_runtime_reduction_pct", reduction);

    if (opt.print_figures) {
        std::printf("=== Figure 8: virtual battery policies ===\n");

        std::printf("\n(a) solar power (time_h,watts):\n");
        {
            CsvWriter csv(stdout, {"time_h", "solar_w"});
            for (std::size_t i = 0; i < st.solar_w.size(); i += 30) {
                csv.row({static_cast<double>(st.solar_w[i].first) /
                             3600.0,
                         st.solar_w[i].second});
            }
        }
        std::printf("\n(b) web workload (time_h,rps):\n");
        {
            CsvWriter csv(stdout, {"time_h", "rps"});
            for (std::size_t i = 0; i < st.web_workload.size(); i += 6) {
                csv.row({static_cast<double>(st.web_workload[i].first) /
                             3600.0,
                         st.web_workload[i].second});
            }
        }

        printPair("(c) Spark workers", st.spark_workers, "system",
                  dy.spark_workers, "dynamic", 30);
        printPair("(d) web workers", st.web_workers, "system",
                  dy.web_workers, "dynamic", 30);
        printPair("(e) web p95 latency (SLO 100 ms)", st.web_latency_ms,
                  "system", dy.web_latency_ms, "dynamic", 30);

        std::printf("\nSummary:\n");
        TextTable t({"metric", "system", "dynamic"});
        t.addRow({"spark runtime (h)",
                  TextTable::fmt(st.spark_runtime_s / 3600.0, 2),
                  TextTable::fmt(dy.spark_runtime_s / 3600.0, 2)});
        t.addRow({"web SLO violations",
                  std::to_string(st.web_slo_violations),
                  std::to_string(dy.web_slo_violations)});
        t.addRow({"grid energy (Wh, ~0 = zero-carbon)",
                  TextTable::fmt(st.total_grid_wh, 2),
                  TextTable::fmt(dy.total_grid_wh, 2)});
        t.print();

        std::printf("\nDynamic Spark policy runtime reduction: %.1f%% "
                    "(paper: 39%%).\n",
                    reduction);
        std::printf("Paper shape check: dynamic Spark surfs excess "
                    "solar when its battery is full; the dynamic web "
                    "app scales with load and holds its SLO while the "
                    "static one cannot.\n");
    }
    return out;
}

const ScenarioRegistrar reg({
    "fig08_virtual_battery",
    "Figure 8: static vs dynamic virtual battery policies for Spark + "
    "monitoring web app on shared solar",
    /*default_seed=*/17,
    {},
    run,
});

} // namespace
} // namespace ecov::bench
