/**
 * @file
 * Microbenchmark scenario: the cost of the telemetry substrate — one
 * sample write through the string-keyed compat shim vs the interned
 * SeriesId fast path (with and without the std::to_string container
 * tagging the shim pays per call), interval queries with and without
 * the monotone cursor hint, allocation traffic on the write paths,
 * and the bounded-retention append (rollup folding + amortized
 * sealing) next to the heap held by a bounded vs unbounded series. The companion of `micro_cop_overhead`: that one times the
 * cluster layer, this one times the store every settled tick records
 * into. All timing results are host-dependent perf metrics
 * (warn-only in `ecobench diff`).
 */

#include <chrono>
#include <cstdio>
#include <string>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "common/registry.h"
#include "telemetry/ts_database.h"
#include "util/table.h"

namespace ecov::bench {
namespace {

/** Time `iters` calls of `fn`; returns mean ns/op. */
template <typename Fn>
double
nsPerOp(int iters, Fn &&fn)
{
    volatile double sink = 0.0;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i)
        sink = sink + fn(i);
    const auto end = std::chrono::steady_clock::now();
    (void)sink;
    return std::chrono::duration<double, std::nano>(end - start)
               .count() /
           static_cast<double>(iters);
}

/**
 * Net heap bytes held after running `fn` (glibc mallinfo2 delta; 0
 * elsewhere). Demonstrates the "allocation-free append" claim: after
 * reserve(), a burst of SeriesId appends must report zero growth.
 */
template <typename Fn>
double
allocBytes(Fn &&fn)
{
#if defined(__GLIBC__)
    const auto before = mallinfo2().uordblks;
    fn();
    const auto after = mallinfo2().uordblks;
    return after > before ? static_cast<double>(after - before) : 0.0;
#else
    fn();
    return 0.0;
#endif
}

ScenarioOutcome
run(const ScenarioOptions &opt)
{
    const int iters = opt.horizon == Horizon::Short ? 50000 : 500000;

    ScenarioOutcome out;
    out.metric("iterations", iters);

    TextTable t({"operation", "value"});
    auto record = [&](const std::string &key, double ns) {
        out.perfMetric(key + "_ns", ns);
        t.addRow({key, TextTable::fmt(ns, 1) + " ns/op"});
    };

    // ------------------------------------------------------------------
    // Write paths. One write per tick per series with advancing
    // timestamps — exactly the recordTelemetry access pattern. 64
    // tenants' worth of series makes the shim walk a realistic
    // intern map on every call.
    // ------------------------------------------------------------------
    {
        ts::TsDatabase db;
        for (int a = 0; a < 64; ++a) {
            const std::string app = "app" + std::to_string(a);
            for (const char *m :
                 {"app_power_w", "app_grid_w", "app_carbon_g"})
                db.write(m, app, 0, 1.0);
        }
        TimeS now = 60;
        record("write_string_app", nsPerOp(iters, [&](int) {
                   db.write("app_power_w", "app37", now++, 55.5);
                   return 0.0;
               }));
        const ts::SeriesId id = db.findSeries("app_grid_w", "app37");
        record("append_seriesid", nsPerOp(iters, [&](int) {
                   db.append(id, now++, 55.5);
                   return 0.0;
               }));

        // The per-container pattern the seed paid every tick: format
        // the container id into the tag, then resolve the string key.
        // The fast path hoists both to the container's first sight.
        const long long cid = 1234567; // container-id-shaped tag
        db.write("container_power_w", std::to_string(cid), 0, 1.0);
        record("write_string_container", nsPerOp(iters, [&](int) {
                   db.write("container_power_w", std::to_string(cid),
                            now, 20.0);
                   return 0.0;
               }));
        const ts::SeriesId cpid =
            db.findSeries("container_power_w", std::to_string(cid));
        record("append_seriesid_container", nsPerOp(iters, [&](int) {
                   db.append(cpid, now, 20.0);
                   return 0.0;
               }));
        now += 1;

        // Allocation traffic for one burst of writes per path. The
        // reserved SeriesId path must hold zero net heap growth; the
        // string shim pays for key temporaries on every call (they
        // are freed again, so measure live bytes conservatively via
        // a tag long enough to defeat SSO).
        const int burst = 4096;
        ts::TsDatabase adb;
        const ts::SeriesId rid =
            adb.intern("app_power_w", "allocation_probe_tenant_0001");
        adb.reserve(rid, static_cast<std::size_t>(burst) + 1);
        adb.append(rid, 0, 1.0);
        double append_bytes = allocBytes([&] {
            for (int i = 1; i <= burst; ++i)
                adb.append(rid, i, 1.0);
        });
        out.perfMetric("append_seriesid_alloc_bytes", append_bytes);
        t.addRow({"append_seriesid_alloc",
                  TextTable::fmt(append_bytes, 0) + " bytes/" +
                      std::to_string(burst) + " appends"});
    }

    // ------------------------------------------------------------------
    // Query paths: a long gauge series swept by monotone interval
    // queries (the policy-loop pattern) with and without the cursor
    // hint. Results are bit-identical; only the search cost differs.
    // ------------------------------------------------------------------
    {
        ts::TsDatabase db;
        const ts::SeriesId id = db.intern("app_power_w", "app0");
        const int n = opt.horizon == Horizon::Short ? 100000 : 1000000;
        db.reserve(id, static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i)
            db.append(id, static_cast<TimeS>(i) * 60,
                      0.5 + static_cast<double>(i % 17));
        const ts::TimeSeries &s = db.series(id);
        const TimeS span = static_cast<TimeS>(n) * 60;

        volatile double guard = 0.0;
        double plain = 0.0, hinted = 0.0;
        {
            const auto start = std::chrono::steady_clock::now();
            for (int i = 0; i < iters; ++i) {
                const TimeS t1 =
                    (static_cast<TimeS>(i) * 60) % (span - 600);
                guard = guard + s.integrateWh(t1, t1 + 600);
            }
            plain = std::chrono::duration<double, std::nano>(
                        std::chrono::steady_clock::now() - start)
                        .count() /
                    static_cast<double>(iters);
        }
        {
            ts::Cursor cursor;
            const auto start = std::chrono::steady_clock::now();
            for (int i = 0; i < iters; ++i) {
                const TimeS t1 =
                    (static_cast<TimeS>(i) * 60) % (span - 600);
                if (t1 == 0)
                    cursor = ts::Cursor{}; // window wrapped: restart
                guard = guard + s.integrateWh(t1, t1 + 600, &cursor);
            }
            hinted = std::chrono::duration<double, std::nano>(
                         std::chrono::steady_clock::now() - start)
                         .count() /
                     static_cast<double>(iters);
        }
        (void)guard;
        record("integrate_600s_window", plain);
        record("integrate_600s_window_cursor", hinted);
    }

    // ------------------------------------------------------------------
    // Retention: the bounded append pays for rollup folding plus the
    // amortized seal, and in exchange the series holds O(window)
    // bytes instead of O(horizon). Both are perf metrics (the heap
    // ones are exact byte counts from memoryBytes(), but they track
    // container growth policy, which is toolchain-dependent).
    // ------------------------------------------------------------------
    {
        const int n = opt.horizon == Horizon::Short ? 100000 : 1000000;

        ts::TsDatabase unbounded;
        const ts::SeriesId uid = unbounded.intern("app_power_w", "u");
        for (int i = 0; i < n; ++i)
            unbounded.append(uid, static_cast<TimeS>(i) * 60,
                             0.5 + static_cast<double>(i % 17));

        ts::TsDatabase bounded;
        ts::RetentionConfig retention;
        retention.window_s = 1440 * 60; // one day of minute ticks
        bounded.setDefaultRetention(retention);
        const ts::SeriesId bid = bounded.intern("app_power_w", "b");
        TimeS bnow = 0;
        record("append_seriesid_bounded", nsPerOp(n, [&](int) {
                   bounded.append(bid, bnow, 0.5);
                   bnow += 60;
                   return 0.0;
               }));

        const double ub = static_cast<double>(unbounded.memoryBytes());
        const double bb = static_cast<double>(bounded.memoryBytes());
        out.perfMetric("series_heap_bytes_unbounded", ub);
        out.perfMetric("series_heap_bytes_bounded", bb);
        t.addRow({"series_heap_unbounded",
                  TextTable::fmt(ub / 1024.0, 1) + " KiB/" +
                      std::to_string(n) + " samples"});
        t.addRow({"series_heap_bounded",
                  TextTable::fmt(bb / 1024.0, 1) + " KiB/" +
                      std::to_string(n) + " samples"});
    }

    if (opt.print_figures) {
        std::printf("=== Microbenchmark: telemetry substrate overhead "
                    "===\n\n");
        t.print();
        std::printf("\nSanity check: the SeriesId append must beat "
                    "both string-shim writes (the container variant "
                    "pays an extra std::to_string per call), hold "
                    "zero allocation per append after reserve, and "
                    "the cursored monotone sweep must beat the "
                    "re-searching one.\n");
    }
    return out;
}

const ScenarioRegistrar reg({
    "micro_telemetry_overhead",
    "Microbenchmark: ns/op for telemetry writes (string shim vs "
    "SeriesId) and cursor-hinted interval queries (perf-only)",
    /*default_seed=*/1,
    {},
    run,
});

} // namespace
} // namespace ecov::bench
