/**
 * @file
 * Figure 9 scenario: multi-tenancy of application-specific virtual
 * battery policies — state of charge and battery charge/discharge
 * power for the Spark job and the monitoring web app sharing one
 * physical battery. Metrics are the SOC floors each app respects and
 * the battery-power extremes; `--figures` prints the series.
 */

#include <algorithm>
#include <cstdio>

#include "common/registry.h"
#include "common/scenarios.h"
#include "common/series_stats.h"
#include "util/table.h"

namespace ecov::bench {
namespace {

ScenarioOutcome
run(const ScenarioOptions &opt)
{
    auto dy = runBatteryScenario(true, opt.seed, tuningFor(opt));

    ScenarioOutcome out;
    out.metric("spark_min_soc_pct",
               seriesMin(dy.spark_soc, 1.0) * 100.0);
    out.metric("web_min_soc_pct", seriesMin(dy.web_soc, 1.0) * 100.0);
    out.metric("spark_peak_batt_w", seriesAbsMax(dy.spark_batt_w));
    out.metric("web_peak_batt_w", seriesAbsMax(dy.web_batt_w));

    if (opt.print_figures) {
        std::printf("=== Figure 9: multi-tenant virtual batteries "
                    "===\n");

        std::printf("\n(a) state of charge (time_h,spark_soc_pct,"
                    "web_soc_pct,min_soc_pct):\n");
        {
            CsvWriter csv(stdout, {"time_h", "spark_soc", "web_soc",
                                   "min_soc"});
            std::size_t n =
                std::min(dy.spark_soc.size(), dy.web_soc.size());
            for (std::size_t i = 0; i < n; i += 30) {
                csv.row({static_cast<double>(dy.spark_soc[i].first) /
                             3600.0,
                         dy.spark_soc[i].second * 100.0,
                         dy.web_soc[i].second * 100.0, 30.0});
            }
        }

        std::printf("\n(b) battery power, +charge/-discharge "
                    "(time_h,spark_w,web_w):\n");
        {
            CsvWriter csv(stdout, {"time_h", "spark_w", "web_w"});
            std::size_t n =
                std::min(dy.spark_batt_w.size(), dy.web_batt_w.size());
            for (std::size_t i = 0; i < n; i += 30) {
                csv.row({static_cast<double>(dy.spark_batt_w[i].first) /
                             3600.0,
                         dy.spark_batt_w[i].second,
                         dy.web_batt_w[i].second});
            }
        }

        std::printf(
            "\nPaper shape check: both virtual batteries respect the "
            "30%% SOC floor; usage patterns differ by application — "
            "Spark drains deeper to keep workers busy, the web app "
            "cycles with its day-time workload.\n");
    }
    return out;
}

const ScenarioRegistrar reg({
    "fig09_battery_multitenancy",
    "Figure 9: multi-tenant virtual batteries (per-app SOC and "
    "charge/discharge under dynamic policies)",
    /*default_seed=*/17,
    {},
    run,
});

} // namespace
} // namespace ecov::bench
