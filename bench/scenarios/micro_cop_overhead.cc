/**
 * @file
 * Microbenchmark scenario: the cost of the COP substrate itself —
 * container create/destroy churn, per-app power aggregation
 * (`appPowerW` by name vs by interned app index), allocation-free
 * container iteration, and handle validation. The companion of
 * `micro_api_overhead`: that one times the ecovisor's Table 1
 * surface, this one times the cluster layer those calls bottom out
 * in. All results are host-dependent perf metrics (warn-only in
 * `ecobench diff`).
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/registry.h"
#include "cop/cluster.h"
#include "cop/columns.h"
#include "util/table.h"

namespace ecov::bench {
namespace {

/** Time `iters` calls of `fn`; returns mean ns/op. */
template <typename Fn>
double
nsPerOp(int iters, Fn &&fn)
{
    volatile double sink = 0.0;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i)
        sink = sink + fn(i);
    const auto end = std::chrono::steady_clock::now();
    (void)sink;
    return std::chrono::duration<double, std::nano>(end - start)
               .count() /
           static_cast<double>(iters);
}

/** A cluster with `apps` tenants x `per_app` demanding containers. */
struct Fleet
{
    cop::Cluster cluster;
    std::vector<std::string> names;
    std::vector<cop::ContainerId> ids;

    Fleet(int nodes, int apps, int per_app)
        : cluster(nodes, power::ServerPowerConfig{8, 1.35, 5.0, 0.0})
    {
        for (int a = 0; a < apps; ++a) {
            names.push_back("app" + std::to_string(a));
            for (int c = 0; c < per_app; ++c) {
                auto id = cluster.createContainer(names.back(), 1.0);
                if (id) {
                    cluster.setDemand(*id, 0.7);
                    ids.push_back(*id);
                }
            }
        }
    }
};

ScenarioOutcome
run(const ScenarioOptions &opt)
{
    const int iters = opt.horizon == Horizon::Short ? 20000 : 200000;

    ScenarioOutcome out;
    out.metric("iterations", iters);

    TextTable t({"operation", "ns_per_op"});
    auto record = [&](const std::string &key, double ns) {
        out.perfMetric(key + "_ns", ns);
        t.addRow({key, TextTable::fmt(ns, 1)});
    };

    // Create/destroy churn: one slot recycled per op, the pattern
    // every elastic workload (scale down + scale up) produces.
    {
        Fleet f(8, 2, 4);
        record("create_destroy_churn", nsPerOp(iters, [&](int) {
                   auto id = f.cluster.createContainer(f.names[0], 1.0);
                   f.cluster.destroyContainer(*id);
                   return static_cast<double>(*id);
               }));
    }

    // Handle/id validation and single-container power attribution.
    {
        Fleet f(8, 2, 4);
        const cop::ContainerId id = f.ids.front();
        record("exists_by_id", nsPerOp(iters, [&](int) {
                   return f.cluster.exists(id) ? 1.0 : 0.0;
               }));
        record("find_by_ref", nsPerOp(iters, [&](int) {
                   const auto *c = f.cluster.find(f.cluster.refOf(id));
                   return c ? c->cores : 0.0;
               }));
        const cop::ContainerRef ref = f.cluster.refOf(id);
        record("validate_ref", nsPerOp(iters, [&](int) {
                   return f.cluster.find(ref) ? 1.0 : 0.0;
               }));
        record("container_power_by_id", nsPerOp(iters, [&](int) {
                   return f.cluster.containerPowerW(id);
               }));
    }

    // Per-app aggregation at growing fleet sizes. Three paths:
    // cached (clean aggregate, O(1) read), walk (cache invalidated
    // every iteration, so the per-app list walk itself is timed —
    // minus the ~setDemand of the dirtying store), and the
    // name-keyed compat path (intern lookup + cached read). Under
    // the pre-slab std::map substrate the walk visited *every*
    // container in the cluster per app.
    struct Shape
    {
        int apps;
        int per_app;
        const char *key;
    };
    for (const auto &shape :
         {Shape{4, 8, "4x8"}, Shape{16, 16, "16x16"},
          Shape{64, 16, "64x16"}}) {
        Fleet f(shape.apps * 4, shape.apps, shape.per_app);
        const cop::AppIndex app0 = f.cluster.findAppIndex(f.names[0]);
        const cop::ContainerId dirty_id = f.ids.front();
        record(std::string("app_power_string_") + shape.key,
               nsPerOp(iters, [&](int) {
                   return f.cluster.appPowerW(f.names[0]);
               }));
        record(std::string("app_power_index_cached_") + shape.key,
               nsPerOp(iters, [&](int) {
                   return f.cluster.appPowerW(app0);
               }));
        record(std::string("app_power_index_walk_") + shape.key,
               nsPerOp(iters, [&](int i) {
                   // Dirty the aggregate so every call re-walks the
                   // app's list — the settle-path cost (demand
                   // changes each tick).
                   f.cluster.setDemand(dirty_id,
                                       0.1 * ((i % 9) + 1));
                   return f.cluster.appPowerW(app0);
               }));
        record(std::string("for_each_app_container_") + shape.key,
               nsPerOp(iters, [&](int) {
                   double cores = 0.0;
                   f.cluster.forEachAppContainer(
                       app0, [&](const cop::Container &c) {
                           cores += c.cores;
                       });
                   return cores;
               }));
        record(std::string("app_containers_alloc_") + shape.key,
               nsPerOp(iters, [&](int) {
                   return static_cast<double>(
                       f.cluster.appContainers(f.names[0]).size());
               }));
    }

    // Settle walk on a churned slab: destroy every other container
    // fleet-wide, then refill — each app's list survives in creation
    // order but its slots are scattered across the slab, the layout
    // long-running elastic workloads converge to. With the hot
    // columns this costs extra only through stride, not through
    // fatter rows.
    {
        Fleet f(64 * 4, 64, 16);
        for (std::size_t i = 0; i < f.ids.size(); i += 2)
            f.cluster.destroyContainer(f.ids[i]);
        for (std::size_t i = 0; i < f.ids.size(); i += 2) {
            auto id = f.cluster.createContainer(
                f.names[i % f.names.size()], 1.0);
            if (id)
                f.cluster.setDemand(*id, 0.7);
        }
        const cop::AppIndex app0 = f.cluster.findAppIndex(f.names[0]);
        const cop::ContainerId dirty_id =
            f.cluster.appContainers(app0).front();
        record("app_power_index_walk_churned_64x16",
               nsPerOp(iters, [&](int i) {
                   f.cluster.setDemand(dirty_id,
                                       0.1 * ((i % 9) + 1));
                   return f.cluster.appPowerW(app0);
               }));
    }

    // --- Layout: bytes touched per container by the settle walk ---
    //
    // The SNIPPETS.md Snippet 1 method: cache-line utilisation =
    // useful bytes / bytes actually dragged through cache. The AoS
    // figure is what the pre-column walk cost — every line the fat
    // slot spans loaded for a handful of scalar reads; the SoA figure
    // is the dense hot columns the walk streams today (powerAtSlot:
    // demand, util_cap, idle_w, dyn_w, gpu_peak_w, gpu_util + the
    // app_next link). Estimates assume 64 B lines and line-aligned
    // rows (a lower bound for AoS: unaligned slots straddle one more
    // line). Deterministic given the build, but sizeof(Slot) is
    // ABI-dependent, so these report as perf metrics.
    {
        constexpr double kLine = 64.0;
        const auto slot_bytes =
            static_cast<double>(cop::Cluster::slotSizeBytes());
        const double aos_lines = std::ceil(slot_bytes / kLine);
        const double aos_loaded = aos_lines * kLine;
        const double aos_useful = static_cast<double>(
            cop::kSettleUsefulAosBytesPerContainer);
        const double soa_loaded = static_cast<double>(
            cop::kSettleColumnBytesPerContainer);

        TextTable lt({"layout", "bytes_per_container", "useful_bytes",
                      "cache_line_util_pct"});
        lt.addRow({"aos_slot (pre-columns)",
                   TextTable::fmt(aos_loaded, 0),
                   TextTable::fmt(aos_useful, 0),
                   TextTable::fmt(100.0 * aos_useful / aos_loaded, 1)});
        lt.addRow({"soa_columns (settle walk)",
                   TextTable::fmt(soa_loaded, 0),
                   TextTable::fmt(soa_loaded, 0),
                   TextTable::fmt(100.0, 1)});

        out.perfMetric("slot_size_bytes", slot_bytes);
        out.perfMetric("settle_bytes_per_container_aos", aos_loaded);
        out.perfMetric("settle_bytes_per_container_soa", soa_loaded);
        out.perfMetric("settle_cache_line_util_aos_pct",
                       100.0 * aos_useful / aos_loaded);
        out.perfMetric("settle_cache_line_util_soa_pct", 100.0);

        if (opt.print_figures) {
            std::printf("=== Settle-walk layout: bytes touched per "
                        "container ===\n\n");
            lt.print();
            std::printf("\nsizeof(Slot) = %.0f B; the settle walk "
                        "reads %.0f useful bytes per container. "
                        "Columns stream exactly those bytes; the old "
                        "AoS walk loaded the whole slot.\n\n",
                        slot_bytes, soa_loaded);
        }
    }

    if (opt.print_figures) {
        std::printf("=== Microbenchmark: COP substrate overhead "
                    "===\n\n");
        t.print();
        std::printf("\nSanity check: the walk path must grow only "
                    "with the app's own container count (never with "
                    "total cluster size), the cached path must stay "
                    "flat, for_each must beat the allocating "
                    "appContainers copy, and the churned walk must "
                    "stay within ~2x of the dense 64x16 walk (stride, "
                    "not row size, is the only difference).\n");
    }
    return out;
}

const ScenarioRegistrar reg({
    "micro_cop_overhead",
    "Microbenchmark: ns/op for COP create/destroy churn, handle "
    "validation, and per-app aggregation (perf-only)",
    /*default_seed=*/1,
    {},
    run,
});

} // namespace
} // namespace ecov::bench
