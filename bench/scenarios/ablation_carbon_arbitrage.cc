/**
 * @file
 * Ablation scenario: battery carbon arbitrage (Section 3.1 names it
 * as a use of the battery setters; no paper figure quantifies it).
 *
 * A constant-load application arbitrages the CAISO-like diurnal
 * carbon signal through its virtual battery: charge below the 30th
 * intensity percentile, discharge above the 70th. Sweeps battery
 * capacity and records carbon savings versus running without storage,
 * with ideal and lossy (90 %) round-trip efficiency.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "carbon/region_traces.h"
#include "common/registry.h"
#include "core/ecovisor.h"
#include "policies/carbon_arbitrage.h"
#include "sim/simulation.h"
#include "util/table.h"

namespace ecov::bench {
namespace {

double
runWith(double capacity_wh, double efficiency, bool arbitrage,
        std::uint64_t seed, int days, TimeS tick_s)
{
    auto signal = carbon::makeCaisoLikeTrace(days, seed);
    energy::GridConnection grid(&signal);
    cop::Cluster cluster(4, power::ServerPowerConfig{});
    energy::BatteryConfig bank;
    bank.capacity_wh = std::max(1.0, capacity_wh);
    bank.soc_floor = 0.0;
    bank.max_charge_w = bank.capacity_wh / 4.0;  // 0.25C
    bank.max_discharge_w = bank.capacity_wh;     // 1C
    bank.initial_soc = 0.0;
    bank.efficiency = efficiency;
    energy::PhysicalEnergySystem phys(&grid, nullptr, bank);
    core::Ecovisor eco(&cluster, &phys);

    core::AppShareConfig share;
    share.battery = bank;
    const api::AppHandle app_h = eco.tryAddApp("app", share).value();

    policy::CarbonArbitrageConfig cfg;
    cfg.low_g_per_kwh = signal.intensityPercentile(30.0);
    cfg.high_g_per_kwh = signal.intensityPercentile(70.0);
    cfg.charge_rate_w = bank.max_charge_w;
    cfg.max_discharge_w = bank.max_discharge_w;
    policy::CarbonArbitragePolicy pol(&eco, "app", cfg);

    auto id = cluster.createContainer("app", 4.0);
    if (id)
        cluster.setDemand(*id, 1.0); // constant 5 W

    sim::Simulation simul(tick_s);
    if (arbitrage) {
        simul.addListener([&](TimeS t, TimeS dt) { pol.onTick(t, dt); },
                          sim::TickPhase::Policy);
    } else {
        eco.setBatteryMaxDischarge(app_h, 0.0).orFatal();
    }
    eco.attach(simul);
    simul.runUntil(static_cast<TimeS>(days) * 24 * 3600);
    return eco.ves(app_h)->totalCarbonG();
}

ScenarioOutcome
run(const ScenarioOptions &opt)
{
    const int days = opt.horizon == Horizon::Short ? 2 : 4;
    const std::vector<double> caps =
        opt.horizon == Horizon::Short
            ? std::vector<double>{10.0, 40.0}
            : std::vector<double>{5.0, 10.0, 20.0, 40.0, 80.0};

    double base = runWith(1.0, 1.0, false, opt.seed, days, opt.tick_s);

    ScenarioOutcome out;
    out.metric("baseline_carbon_g", base);

    TextTable t({"battery_wh", "co2_g(eff=1.0)", "saving_pct",
                 "co2_g(eff=0.9)", "saving_pct(0.9)"});
    for (double cap : caps) {
        double ideal =
            runWith(cap, 1.0, true, opt.seed, days, opt.tick_s);
        double lossy =
            runWith(cap, 0.9, true, opt.seed, days, opt.tick_s);
        const std::string prefix =
            "cap" + std::to_string(static_cast<int>(cap)) + "wh_";
        out.metric(prefix + "saving_pct",
                   100.0 * (1.0 - ideal / base));
        out.metric(prefix + "saving_pct_lossy",
                   100.0 * (1.0 - lossy / base));
        t.addRow({TextTable::fmt(cap, 0), TextTable::fmt(ideal, 3),
                  TextTable::fmt(100.0 * (1.0 - ideal / base), 1),
                  TextTable::fmt(lossy, 3),
                  TextTable::fmt(100.0 * (1.0 - lossy / base), 1)});
    }

    if (opt.print_figures) {
        std::printf("=== Ablation: battery carbon arbitrage (Section "
                    "3.1) ===\n\n");
        std::printf("no-storage baseline: %.3f gCO2 over %d days "
                    "(constant 5 W load)\n\n",
                    base, days);
        t.print();
        std::printf(
            "\nExpected: savings grow with capacity while the bank "
            "can be drained into the load during dirty periods, then "
            "*decline*: an oversized bank keeps charging near the "
            "threshold but can only discharge at the 5 W load rate, "
            "stranding paid-for energy. Round-trip losses shave every "
            "row and push oversized banks negative.\n");
    }
    return out;
}

const ScenarioRegistrar reg({
    "ablation_carbon_arbitrage",
    "Ablation: battery carbon arbitrage across battery capacities, "
    "ideal and lossy round-trip",
    /*default_seed=*/19,
    {},
    run,
});

} // namespace
} // namespace ecov::bench
