/**
 * @file
 * Figure 11 reproduction: straggler mitigation as a productive use of
 * excess solar energy. Sweeps available renewable power from 100 % to
 * 200 % and reports the runtime improvement from replica-based
 * mitigation (vs the dynamic policy without replicas) and the
 * resulting energy-efficiency decline.
 */

#include <cstdio>

#include "common/scenarios.h"
#include "util/table.h"

using namespace ecov;
using namespace ecov::bench;

int
main()
{
    std::printf("=== Figure 11: straggler mitigation with excess "
                "solar ===\n\n");

    TextTable t({"solar_pct", "baseline_runtime_h", "mitigated_runtime_h",
                 "runtime_improvement_pct", "energy_eff_1_per_kj",
                 "replicas"});
    for (double pct = 100.0; pct <= 200.0; pct += 25.0) {
        auto base = runSolarCapScenario(SolarPolicyKind::DynamicCaps,
                                        pct, 29, true);
        auto mit = runSolarCapScenario(
            SolarPolicyKind::StragglerMitigation, pct, 29, true);
        double improvement =
            100.0 * (1.0 - static_cast<double>(mit.runtime_s) /
                               static_cast<double>(base.runtime_s));
        double eff =
            mit.useful_work / (mit.energy_wh * 3600.0) * 1000.0;
        t.addRow({TextTable::fmt(pct, 0),
                  TextTable::fmt(base.runtime_s / 3600.0, 2),
                  TextTable::fmt(mit.runtime_s / 3600.0, 2),
                  TextTable::fmt(improvement, 1),
                  TextTable::fmt(eff, 3),
                  std::to_string(mit.replicas)});
    }
    t.print();

    std::printf(
        "\nPaper shape check: mitigation uses excess (otherwise "
        "curtailed) solar to run replicas — runtime improves with "
        "diminishing returns as solar grows, while energy-efficiency "
        "falls because replica work is discarded.\n");
    return 0;
}
