/**
 * @file
 * Figure 9 reproduction: multi-tenancy of application-specific
 * virtual battery policies — state of charge (a) and battery
 * charge/discharge power (b) for the Spark job and the monitoring web
 * app sharing one physical battery under their dynamic policies.
 */

#include <cstdio>

#include "common/scenarios.h"
#include "util/table.h"

using namespace ecov;
using namespace ecov::bench;

int
main()
{
    std::printf("=== Figure 9: multi-tenant virtual batteries ===\n");

    auto dy = runBatteryScenario(true, 17);

    std::printf("\n(a) state of charge (time_h,spark_soc_pct,"
                "web_soc_pct,min_soc_pct):\n");
    {
        CsvWriter csv(stdout,
                      {"time_h", "spark_soc", "web_soc", "min_soc"});
        std::size_t n = std::min(dy.spark_soc.size(), dy.web_soc.size());
        for (std::size_t i = 0; i < n; i += 30) {
            csv.row({static_cast<double>(dy.spark_soc[i].first) / 3600.0,
                     dy.spark_soc[i].second * 100.0,
                     dy.web_soc[i].second * 100.0, 30.0});
        }
    }

    std::printf("\n(b) battery power, +charge/-discharge "
                "(time_h,spark_w,web_w):\n");
    {
        CsvWriter csv(stdout, {"time_h", "spark_w", "web_w"});
        std::size_t n =
            std::min(dy.spark_batt_w.size(), dy.web_batt_w.size());
        for (std::size_t i = 0; i < n; i += 30) {
            csv.row({static_cast<double>(dy.spark_batt_w[i].first) /
                         3600.0,
                     dy.spark_batt_w[i].second,
                     dy.web_batt_w[i].second});
        }
    }

    std::printf(
        "\nPaper shape check: both virtual batteries respect the 30%% "
        "SOC floor; usage patterns differ by application — Spark "
        "drains deeper to keep workers busy, the web app cycles with "
        "its day-time workload.\n");
    return 0;
}
