#include "common/bench_diff.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

namespace ecov::bench {

namespace {

/** Relative delta in percent with a guarded denominator. */
double
relativeDeltaPct(double baseline, double current, double eps)
{
    const double denom = std::max(std::fabs(baseline), eps);
    return 100.0 * std::fabs(current - baseline) / denom;
}

/** Scenario entries keyed by name; malformed entries are skipped. */
std::map<std::string, const JsonValue *>
scenarioIndex(const JsonValue &report)
{
    std::map<std::string, const JsonValue *> out;
    const JsonValue *arr = report.find("scenarios");
    if (!arr || !arr->isArray())
        return out;
    for (const auto &entry : arr->asArray()) {
        std::string name = entry.stringOr("name", "");
        if (!name.empty())
            out.emplace(std::move(name), &entry);
    }
    return out;
}

/**
 * Compare one metric section ("metrics" or "perf") of a scenario
 * pair, appending to the result according to the section's policy.
 */
void
diffSection(const std::string &scenario, const JsonValue &base_entry,
            const JsonValue &cur_entry, const char *section, bool perf,
            const DiffOptions &opt, DiffResult *result)
{
    const JsonValue *base_sec = base_entry.find(section);
    const JsonValue *cur_sec = cur_entry.find(section);
    static const JsonValue::Object empty;
    const auto &base_map =
        base_sec && base_sec->isObject() ? base_sec->asObject() : empty;
    const auto &cur_map =
        cur_sec && cur_sec->isObject() ? cur_sec->asObject() : empty;

    const double tol = perf ? opt.perf_tolerance_pct : opt.tolerance_pct;
    const bool enforce = !perf || opt.perf_tolerance_pct >= 0.0;

    for (const auto &[name, base_val] : base_map) {
        if (!base_val.isNumber()) {
            // A NaN metric serializes as null; if that ever reaches a
            // baseline, the gate would silently narrow. Warn so the
            // unhealthy baseline gets regenerated.
            DiffEntry e;
            e.kind = DiffEntry::Kind::NonNumeric;
            e.perf = perf;
            e.scenario = scenario;
            e.metric = name;
            result->warnings.push_back(std::move(e));
            continue;
        }
        auto it = cur_map.find(name);
        DiffEntry e;
        e.perf = perf;
        e.scenario = scenario;
        e.metric = name;
        e.baseline = base_val.asDouble();
        // When perf enforcement is requested, perf metrics follow the
        // same structural rules as domain metrics.
        if (it == cur_map.end()) {
            e.kind = DiffEntry::Kind::MissingMetric;
            if (enforce)
                result->regressions.push_back(std::move(e));
            else
                result->warnings.push_back(std::move(e));
            continue;
        }
        if (!it->second.isNumber()) {
            // Present but e.g. null (a NaN at generation): point the
            // investigator at the value, not at a dropped metric.
            e.kind = DiffEntry::Kind::NonNumeric;
            e.current_side = true;
            if (enforce)
                result->regressions.push_back(std::move(e));
            else
                result->warnings.push_back(std::move(e));
            continue;
        }
        e.current = it->second.asDouble();
        if (std::fabs(e.current - e.baseline) <= opt.abs_epsilon)
            continue; // bit-equal or within absolute slack: silent
        e.kind = DiffEntry::Kind::Changed;
        e.delta_pct =
            relativeDeltaPct(e.baseline, e.current, opt.abs_epsilon);
        if (enforce && e.delta_pct > tol)
            result->regressions.push_back(std::move(e));
        else if (perf && !enforce)
            result->warnings.push_back(std::move(e));
        else
            result->infos.push_back(std::move(e));
    }
    for (const auto &[name, cur_val] : cur_map) {
        if (base_map.count(name))
            continue;
        DiffEntry e;
        e.kind = DiffEntry::Kind::AddedMetric;
        e.perf = perf;
        e.scenario = scenario;
        e.metric = name;
        e.current = cur_val.isNumber() ? cur_val.asDouble() : 0.0;
        result->infos.push_back(std::move(e));
    }
}

} // namespace

std::string
DiffEntry::describe() const
{
    char buf[256];
    const char *sec = perf ? "perf" : "metric";
    switch (kind) {
      case Kind::SchemaMismatch:
        if (scenario.empty())
            std::snprintf(buf, sizeof buf,
                          "report header mismatch: %s", metric.c_str());
        else
            std::snprintf(buf, sizeof buf,
                          "%s: config mismatch: %s — reports are not "
                          "comparable",
                          scenario.c_str(), metric.c_str());
        break;
      case Kind::MissingScenario:
        std::snprintf(buf, sizeof buf,
                      "scenario %s missing from current report",
                      scenario.c_str());
        break;
      case Kind::AddedScenario:
        std::snprintf(buf, sizeof buf,
                      "scenario %s is new in current report",
                      scenario.c_str());
        break;
      case Kind::MissingMetric:
        std::snprintf(buf, sizeof buf, "%s: %s %s missing from current",
                      scenario.c_str(), sec, metric.c_str());
        break;
      case Kind::AddedMetric:
        std::snprintf(buf, sizeof buf, "%s: %s %s is new (%g)",
                      scenario.c_str(), sec, metric.c_str(), current);
        break;
      case Kind::Changed:
        std::snprintf(buf, sizeof buf,
                      "%s: %s %s drifted %.3f%% (%g -> %g)",
                      scenario.c_str(), sec, metric.c_str(), delta_pct,
                      baseline, current);
        break;
      case Kind::NonNumeric:
        std::snprintf(buf, sizeof buf,
                      "%s: %s %s %s is non-numeric (NaN at "
                      "generation?) — not compared; fix the producing "
                      "run",
                      scenario.c_str(),
                      current_side ? "current" : "baseline", sec,
                      metric.c_str());
        break;
    }
    return buf;
}

DiffResult
diffReports(const JsonValue &baseline, const JsonValue &current,
            const DiffOptions &options)
{
    DiffResult result;

    // Reports are only comparable when produced under the same run
    // configuration; a drifting header is itself a regression.
    // `figures` matters because figure printing happens inside the
    // timed runner and skews perf numbers.
    for (const char *field :
         {"schema_version", "horizon", "tick_s", "figures"}) {
        const JsonValue *b = baseline.find(field);
        const JsonValue *c = current.find(field);
        auto render = [](const JsonValue *v) -> std::string {
            if (!v)
                return "<absent>";
            if (v->isNumber())
                return JsonWriter::formatDouble(v->asDouble());
            if (v->isString())
                return v->asString();
            if (v->isBool())
                return v->asBool() ? "true" : "false";
            return "<non-scalar>";
        };
        if (render(b) != render(c)) {
            DiffEntry e;
            e.kind = DiffEntry::Kind::SchemaMismatch;
            e.metric = std::string(field) + " " + render(b) +
                       " vs " + render(c);
            result.regressions.push_back(std::move(e));
        }
    }

    auto base_idx = scenarioIndex(baseline);
    auto cur_idx = scenarioIndex(current);

    for (const auto &[name, base_entry] : base_idx) {
        auto it = cur_idx.find(name);
        if (it == cur_idx.end()) {
            DiffEntry e;
            e.kind = DiffEntry::Kind::MissingScenario;
            e.scenario = name;
            result.regressions.push_back(std::move(e));
            continue;
        }
        // Different seeds mean different experiments: flag the config
        // drift itself instead of burying it under dozens of metric
        // "regressions".
        const double b_seed = base_entry->numberOr("seed", -1.0);
        const double c_seed = it->second->numberOr("seed", -1.0);
        if (b_seed != c_seed) {
            DiffEntry e;
            e.kind = DiffEntry::Kind::SchemaMismatch;
            e.scenario = name;
            e.metric = "seed " + JsonWriter::formatDouble(b_seed) +
                       " vs " + JsonWriter::formatDouble(c_seed);
            result.regressions.push_back(std::move(e));
            continue; // metric deltas would be pure seed noise
        }
        diffSection(name, *base_entry, *it->second, "metrics", false,
                    options, &result);
        diffSection(name, *base_entry, *it->second, "perf", true,
                    options, &result);
        // Tick counts are deterministic for a fixed configuration;
        // compare them as an exact domain value. Absence is handled
        // explicitly so a sentinel never masquerades as a measurement.
        const JsonValue *b_ticks = base_entry->find("ticks");
        const JsonValue *c_ticks = it->second->find("ticks");
        const bool b_has = b_ticks && b_ticks->isNumber();
        const bool c_has = c_ticks && c_ticks->isNumber();
        if (b_has && !c_has) {
            DiffEntry e;
            e.kind = DiffEntry::Kind::MissingMetric;
            e.scenario = name;
            e.metric = "ticks";
            e.baseline = b_ticks->asDouble();
            result.regressions.push_back(std::move(e));
        } else if (!b_has && c_has) {
            DiffEntry e;
            e.kind = DiffEntry::Kind::AddedMetric;
            e.scenario = name;
            e.metric = "ticks";
            e.current = c_ticks->asDouble();
            result.infos.push_back(std::move(e));
        } else if (b_has && c_has &&
                   b_ticks->asDouble() != c_ticks->asDouble()) {
            DiffEntry e;
            e.scenario = name;
            e.metric = "ticks";
            e.baseline = b_ticks->asDouble();
            e.current = c_ticks->asDouble();
            e.delta_pct = relativeDeltaPct(e.baseline, e.current,
                                           options.abs_epsilon);
            result.regressions.push_back(std::move(e));
        }
    }
    for (const auto &[name, entry] : cur_idx) {
        (void)entry;
        if (!base_idx.count(name)) {
            DiffEntry e;
            e.kind = DiffEntry::Kind::AddedScenario;
            e.scenario = name;
            result.infos.push_back(std::move(e));
        }
    }
    return result;
}

} // namespace ecov::bench
