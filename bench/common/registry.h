/**
 * @file
 * The ecobench scenario registry.
 *
 * Every paper-figure reproduction, ablation, and microbenchmark
 * registers itself here as a named scenario: a description, a small
 * parameter schema, and a runner that returns structured metrics.
 * The `ecobench` CLI is a thin shell over this registry (`list`,
 * `run <name|all>`, `diff`); the former standalone `fig*` binaries
 * are now registrations compiled into it.
 *
 * Scenario runners are deterministic functions of their options:
 * same seed + horizon + tick => identical domain metrics. That is
 * what makes the checked-in BENCH_baseline.json diffable in CI.
 */

#ifndef ECOV_BENCH_COMMON_REGISTRY_H
#define ECOV_BENCH_COMMON_REGISTRY_H

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "util/units.h"

namespace ecov::bench {

/** Horizon preset: paper-scale or CI-smoke-scale. */
enum class Horizon
{
    Full, ///< the paper's experiment lengths
    Short ///< reduced traces/repeats for CI smoke runs
};

/** Parse "full"/"short"; returns false on anything else. */
bool parseHorizon(const std::string &s, Horizon *out);

/** "full" or "short". */
const char *horizonName(Horizon h);

/** Options every scenario runner receives. */
struct ScenarioOptions
{
    std::uint64_t seed = 0;      ///< filled with the scenario default
    Horizon horizon = Horizon::Full;
    TimeS tick_s = 60;           ///< simulation tick length
    bool print_figures = false;  ///< emit the human figure output
};

/**
 * One named measurement produced by a scenario.
 *
 * Domain metrics (carbon_g, runtime_s, p95 latency, SLO violations,
 * ...) are deterministic and participate in `ecobench diff`
 * regression checks. Perf metrics (wall-clock derived) vary by host
 * and are compared warn-only.
 */
struct Metric
{
    std::string name;
    double value = 0.0;
};

/** What a scenario runner returns. */
struct ScenarioOutcome
{
    std::vector<Metric> metrics; ///< deterministic domain metrics
    std::vector<Metric> perf;    ///< host-dependent (ns/op, ...)

    void metric(std::string name, double value)
    {
        metrics.push_back({std::move(name), value});
    }
    void perfMetric(std::string name, double value)
    {
        perf.push_back({std::move(name), value});
    }
};

/** One entry in a scenario's parameter schema (for `list`). */
struct ParamSpec
{
    std::string name;
    std::string description;
    std::string default_value;
};

/** A registered scenario. */
struct Scenario
{
    std::string name;        ///< CLI name, e.g. "fig04_wait_and_scale"
    std::string description; ///< one-line summary for `list`
    std::uint64_t default_seed = 1;
    std::vector<ParamSpec> extra_params; ///< beyond seed/horizon/tick
    std::function<ScenarioOutcome(const ScenarioOptions &)> run;
};

/** The process-wide registry. */
class ScenarioRegistry
{
  public:
    static ScenarioRegistry &instance();

    /** Register a scenario; duplicate names are fatal. */
    void add(Scenario s);

    /** Find by exact name; nullptr when absent. */
    const Scenario *find(const std::string &name) const;

    /** All scenarios, sorted by name. */
    std::vector<const Scenario *> all() const;

    std::size_t size() const { return scenarios_.size(); }

  private:
    std::vector<Scenario> scenarios_;
};

/** Registers a scenario at static-initialization time. */
struct ScenarioRegistrar
{
    explicit ScenarioRegistrar(Scenario s)
    {
        ScenarioRegistry::instance().add(std::move(s));
    }
};

/** The parameter schema shared by every scenario. */
std::vector<ParamSpec> commonParamSpecs();

/** A finished scenario run: outcome plus harness measurements. */
struct ScenarioReport
{
    std::string name;
    std::uint64_t seed = 0;
    double wall_time_s = 0.0;    ///< runner wall-clock (perf)
    std::uint64_t ticks = 0;     ///< simulation ticks executed (domain)
    double ticks_per_sec = 0.0;  ///< throughput (perf)
    ScenarioOutcome outcome;
};

/**
 * Run one scenario with timing + tick accounting. The seed in `opts`
 * should already be resolved (scenario default or CLI override).
 */
ScenarioReport runScenario(const Scenario &scenario,
                           const ScenarioOptions &opts);

/**
 * Serialize reports as the ecobench JSON document (schema_version 1).
 *
 * Layout:
 *   { "schema_version": 1, "horizon": "short", "tick_s": 60,
 *     "figures": false,
 *     "scenarios": [ { "name": ..., "seed": ..., "ticks": ...,
 *                      "metrics": {...}, "perf": {...} }, ... ] }
 *
 * `figures` records whether the run also printed the human figure
 * output — that printing happens inside the timed runner, so perf
 * numbers from figure runs are not comparable to plain runs and the
 * diff header check treats the flag as part of the configuration.
 */
std::string reportsToJson(const std::vector<ScenarioReport> &reports,
                          Horizon horizon, TimeS tick_s,
                          bool figures = false);

} // namespace ecov::bench

#endif // ECOV_BENCH_COMMON_REGISTRY_H
