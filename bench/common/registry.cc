#include "common/registry.h"

#include <algorithm>
#include <chrono>

#include "sim/simulation.h"
#include "util/json.h"
#include "util/logging.h"

namespace ecov::bench {

bool
parseHorizon(const std::string &s, Horizon *out)
{
    if (s == "full") {
        *out = Horizon::Full;
        return true;
    }
    if (s == "short") {
        *out = Horizon::Short;
        return true;
    }
    return false;
}

const char *
horizonName(Horizon h)
{
    return h == Horizon::Full ? "full" : "short";
}

ScenarioRegistry &
ScenarioRegistry::instance()
{
    static ScenarioRegistry registry;
    return registry;
}

void
ScenarioRegistry::add(Scenario s)
{
    if (s.name.empty() || !s.run)
        fatal("ScenarioRegistry::add: scenario needs a name and runner");
    if (find(s.name))
        fatal("ScenarioRegistry::add: duplicate scenario " + s.name);
    scenarios_.push_back(std::move(s));
}

const Scenario *
ScenarioRegistry::find(const std::string &name) const
{
    for (const auto &s : scenarios_)
        if (s.name == name)
            return &s;
    return nullptr;
}

std::vector<const Scenario *>
ScenarioRegistry::all() const
{
    std::vector<const Scenario *> out;
    out.reserve(scenarios_.size());
    for (const auto &s : scenarios_)
        out.push_back(&s);
    std::sort(out.begin(), out.end(),
              [](const Scenario *a, const Scenario *b) {
                  return a->name < b->name;
              });
    return out;
}

std::vector<ParamSpec>
commonParamSpecs()
{
    return {
        {"seed", "deterministic RNG seed for traces and arrivals",
         "per-scenario"},
        {"horizon", "experiment scale: full (paper) or short (CI)",
         "full"},
        {"tick", "simulation tick length in seconds", "60"},
    };
}

ScenarioReport
runScenario(const Scenario &scenario, const ScenarioOptions &opts)
{
    ScenarioReport report;
    report.name = scenario.name;
    report.seed = opts.seed;

    const std::uint64_t ticks_before = sim::Simulation::globalTickCount();
    const auto wall_start = std::chrono::steady_clock::now();
    report.outcome = scenario.run(opts);
    const auto wall_end = std::chrono::steady_clock::now();

    report.ticks = sim::Simulation::globalTickCount() - ticks_before;
    report.wall_time_s =
        std::chrono::duration<double>(wall_end - wall_start).count();
    report.ticks_per_sec =
        report.wall_time_s > 0.0
            ? static_cast<double>(report.ticks) / report.wall_time_s
            : 0.0;
    return report;
}

std::string
reportsToJson(const std::vector<ScenarioReport> &reports,
              Horizon horizon, TimeS tick_s, bool figures)
{
    JsonWriter w;
    w.beginObject();
    w.key("schema_version");
    w.value(std::int64_t{1});
    w.key("horizon");
    w.value(horizonName(horizon));
    w.key("tick_s");
    w.value(static_cast<std::int64_t>(tick_s));
    w.key("figures");
    w.value(figures);
    w.key("scenarios");
    w.beginArray();
    for (const auto &r : reports) {
        w.beginObject();
        w.key("name");
        w.value(r.name);
        w.key("seed");
        w.value(r.seed);
        w.key("ticks");
        w.value(r.ticks);
        w.key("metrics");
        w.beginObject();
        for (const auto &m : r.outcome.metrics) {
            w.key(m.name);
            w.value(m.value);
        }
        w.endObject();
        w.key("perf");
        w.beginObject();
        w.key("wall_time_s");
        w.value(r.wall_time_s);
        w.key("ticks_per_sec");
        w.value(r.ticks_per_sec);
        for (const auto &m : r.outcome.perf) {
            w.key(m.name);
            w.value(m.value);
        }
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

} // namespace ecov::bench
