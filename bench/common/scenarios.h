/**
 * @file
 * Shared scenario runners for the per-figure reproduction binaries.
 *
 * Each runner wires the full stack (Simulation + Ecovisor + physical
 * energy system + COP + workload + policy) exactly as the paper's
 * prototype does, runs it to completion (or a fixed horizon), and
 * returns the measurements each figure plots. The bench binaries are
 * thin printers over these runners; integration tests assert the same
 * orderings on reduced versions.
 */

#ifndef ECOV_BENCH_COMMON_SCENARIOS_H
#define ECOV_BENCH_COMMON_SCENARIOS_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/units.h"
#include "workloads/batch_job.h"

namespace ecov::bench {

/** A (time, value) series copied out of a finished scenario. */
using Series = std::vector<std::pair<TimeS, double>>;

/**
 * Harness-level knobs shared by every scenario runner.
 *
 * `tick_s` overrides the simulation tick (paper default 60 s).
 * `short_horizon` selects reduced trace lengths and job sizes so CI
 * smoke runs finish quickly while exercising the same code paths;
 * results remain deterministic for a fixed (seed, tuning) pair.
 */
struct ScenarioTuning
{
    TimeS tick_s = 60;
    bool short_horizon = false;
};

// ---------------------------------------------------------------------
// Figures 4 and 5 (Section 5.1): carbon reduction for batch jobs.
// ---------------------------------------------------------------------

/** Which carbon-reduction policy governs the batch job. */
enum class BatchPolicyKind
{
    Agnostic,
    SuspendResume,
    WaitAndScale,
};

/** Result of one batch-scenario run. */
struct BatchRunResult
{
    TimeS runtime_s = 0;     ///< job completion - arrival
    double carbon_g = 0.0;   ///< attributed carbon
    bool completed = false;  ///< false if the horizon expired
};

/** Parameters for a batch run. */
struct BatchRunConfig
{
    BatchPolicyKind kind = BatchPolicyKind::Agnostic;
    double scale = 1.0;          ///< Wait&Scale factor
    double threshold_pct = 30.0; ///< carbon percentile threshold
    TimeS arrival_s = 0;         ///< job arrival into the trace
    std::uint64_t trace_seed = 1;
    TimeS horizon_s = 20LL * 24 * 3600;
};

/** Run one batch job under one policy on a CAISO-like signal. */
BatchRunResult runBatchScenario(const wl::BatchJobConfig &job,
                                const BatchRunConfig &run,
                                const ScenarioTuning &tuning = {});

/**
 * Mean/stddev of runtime and carbon over `runs` random arrivals
 * (the paper runs each configuration ten times).
 */
struct BatchAggregate
{
    double mean_runtime_h = 0.0;
    double std_runtime_h = 0.0;
    double mean_carbon_g = 0.0;
    double std_carbon_g = 0.0;
};

BatchAggregate aggregateBatchRuns(const wl::BatchJobConfig &job,
                                  BatchRunConfig run, int runs,
                                  std::uint64_t arrival_seed,
                                  const ScenarioTuning &tuning = {});

/** Figure 5: ML (W&S 2x) and BLAST (W&S 3x) sharing the cluster. */
struct MultiTenantBatchResult
{
    Series carbon_signal;     ///< (a) gCO2/kWh
    Series ml_containers;     ///< (b)
    Series blast_containers;  ///< (c)
    Series cluster_power_w;   ///< (d)
    double ml_threshold = 0.0;
    double blast_threshold = 0.0;
};

MultiTenantBatchResult
runMultiTenantBatch(std::uint64_t seed,
                    const ScenarioTuning &tuning = {});

// ---------------------------------------------------------------------
// Figures 6 and 7 (Section 5.2): carbon budgeting for web services.
// ---------------------------------------------------------------------

/** Per-app measurements from the two-tenant web scenario. */
struct WebAppMeasurements
{
    Series latency_p95_ms;  ///< per-tick p95 latency
    Series workers;         ///< active container count
    Series carbon_rate_g_s; ///< achieved carbon rate
    Series workload_rps;    ///< offered load
    int slo_violations = 0;
    double carbon_g = 0.0;
};

/** Result of one §5.2 run (both apps concurrently). */
struct WebBudgetResult
{
    Series carbon_signal;
    WebAppMeasurements app1;
    WebAppMeasurements app2;
    double target_rate_g_s = 0.0;
};

/**
 * Run both web applications for 48 h under either the static
 * carbon-rate policy or the dynamic budgeting policy.
 */
WebBudgetResult runWebBudgetScenario(bool dynamic_budget,
                                     std::uint64_t seed,
                                     const ScenarioTuning &tuning = {});

// ---------------------------------------------------------------------
// Figures 8 and 9 (Section 5.3): virtual batteries.
// ---------------------------------------------------------------------

/** Result of one §5.3 run (Spark + monitoring web app). */
struct BatteryScenarioResult
{
    Series solar_w;           ///< 8(a) cluster-level solar
    Series web_workload;      ///< 8(b)
    Series spark_workers;     ///< 8(c)
    Series web_workers;       ///< 8(d)
    Series web_latency_ms;    ///< 8(e)
    Series spark_soc;         ///< 9(a)
    Series web_soc;           ///< 9(a)
    Series spark_batt_w;      ///< 9(b) +charge / -discharge
    Series web_batt_w;        ///< 9(b)
    TimeS spark_runtime_s = 0;
    bool spark_completed = false;
    int web_slo_violations = 0;
    double total_grid_wh = 0.0; ///< should stay ~0 (zero-carbon apps)
};

/**
 * Run the §5.3 scenario with static (system-level) or dynamic
 * (application-specific) battery policies for both applications.
 */
BatteryScenarioResult runBatteryScenario(bool dynamic,
                                         std::uint64_t seed,
                                         const ScenarioTuning &tuning = {});

// ---------------------------------------------------------------------
// Figures 10 and 11 (Section 5.4): direct solar exploitation.
// ---------------------------------------------------------------------

/** Result of one §5.4 run. */
struct SolarCapResult
{
    TimeS runtime_s = 0;
    bool completed = false;
    double energy_wh = 0.0;     ///< app energy consumed
    double useful_work = 0.0;   ///< core-seconds of committed work
    Series solar_w;             ///< 10(a)
    Series container_caps_w;    ///< 10(b): mean dynamic cap
    int replicas = 0;
};

/** Policy choice for the §5.4 runs. */
enum class SolarPolicyKind
{
    StaticCaps,
    DynamicCaps,
    StragglerMitigation,
};

/**
 * Run the synthetic parallel job on solar power scaled by
 * `solar_fraction_pct` percent of the nominal trace.
 */
SolarCapResult runSolarCapScenario(SolarPolicyKind kind,
                                   double solar_fraction_pct,
                                   std::uint64_t seed,
                                   bool inject_stragglers,
                                   const ScenarioTuning &tuning = {});

} // namespace ecov::bench

#endif // ECOV_BENCH_COMMON_SCENARIOS_H
