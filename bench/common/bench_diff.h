/**
 * @file
 * Regression diffing for ecobench JSON reports.
 *
 * `ecobench diff baseline.json current.json` compares two reports
 * produced by `ecobench run --format=json`. Domain metrics are
 * compared against a relative tolerance and produce *regressions*
 * (non-zero exit); perf metrics (wall-clock derived) vary by host and
 * only *warn* unless a separate perf tolerance is given. Keeping this
 * in C++ means CI regression checking needs no extra runtime.
 */

#ifndef ECOV_BENCH_COMMON_BENCH_DIFF_H
#define ECOV_BENCH_COMMON_BENCH_DIFF_H

#include <string>
#include <vector>

#include "util/json.h"

namespace ecov::bench {

/** Tolerances for diffReports(). Percentages are relative. */
struct DiffOptions
{
    /** Max relative drift for domain metrics, in percent. */
    double tolerance_pct = 0.1;
    /**
     * Max relative drift for perf metrics, in percent. Negative
     * disables perf checking (perf deltas are reported as info only).
     */
    double perf_tolerance_pct = -1.0;
    /**
     * Absolute slack: deltas no larger than this never count,
     * regardless of relative size (guards near-zero baselines).
     */
    double abs_epsilon = 1e-9;
};

/** One compared value. */
struct DiffEntry
{
    enum class Kind
    {
        Changed,        ///< value drifted beyond tolerance
        MissingScenario,///< scenario in baseline, absent from current
        MissingMetric,  ///< metric in baseline, absent from current
        AddedScenario,  ///< new scenario (informational)
        AddedMetric,    ///< new metric (informational)
        SchemaMismatch, ///< schema_version/horizon/tick disagree
        NonNumeric,     ///< baseline value is not a number (e.g. a
                        ///< NaN metric serialized as null) — the
                        ///< comparison cannot cover it
    };

    Kind kind = Kind::Changed;
    bool perf = false;         ///< true when from the "perf" section
    bool current_side = false; ///< NonNumeric: offending side
    std::string scenario;
    std::string metric;
    double baseline = 0.0;
    double current = 0.0;
    double delta_pct = 0.0;  ///< 100 * |cur - base| / max(|base|, eps)

    std::string describe() const;
};

/** Outcome of a report comparison. */
struct DiffResult
{
    std::vector<DiffEntry> regressions; ///< fail the diff
    std::vector<DiffEntry> warnings;    ///< perf drift (no perf tol.)
    std::vector<DiffEntry> infos;       ///< additions, in-tolerance drift

    bool ok() const { return regressions.empty(); }
};

/**
 * Compare two parsed ecobench reports.
 *
 * Regressions: schema/horizon/tick mismatches, scenarios or domain
 * metrics that disappeared, domain metrics drifting beyond
 * `tolerance_pct`, and — when `perf_tolerance_pct` >= 0 — perf
 * metrics drifting beyond it.
 */
DiffResult diffReports(const JsonValue &baseline,
                       const JsonValue &current,
                       const DiffOptions &options);

} // namespace ecov::bench

#endif // ECOV_BENCH_COMMON_BENCH_DIFF_H
