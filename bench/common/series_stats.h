/**
 * @file
 * Small shared helpers for scenario registrations: reductions over
 * measurement Series (backed by the library's RunningStats so empty-
 * series conventions stay in one place) and the ScenarioOptions ->
 * ScenarioTuning mapping. Header-only; used by bench/scenarios/*.cc.
 */

#ifndef ECOV_BENCH_COMMON_SERIES_STATS_H
#define ECOV_BENCH_COMMON_SERIES_STATS_H

#include <cmath>

#include "common/registry.h"
#include "common/scenarios.h"
#include "util/stats.h"

namespace ecov::bench {

/** The scenario-runner tuning implied by the harness options. */
inline ScenarioTuning
tuningFor(const ScenarioOptions &opt)
{
    return ScenarioTuning{opt.tick_s, opt.horizon == Horizon::Short};
}

/** Accumulate a series' values into a RunningStats. */
inline RunningStats
seriesStats(const Series &s)
{
    RunningStats st;
    for (const auto &p : s)
        st.add(p.second);
    return st;
}

/** Largest value in the series (0 when empty). */
inline double
seriesMax(const Series &s)
{
    return seriesStats(s).max();
}

/** Smallest value in the series (`fallback` when empty). */
inline double
seriesMin(const Series &s, double fallback)
{
    auto st = seriesStats(s);
    return st.count() ? st.min() : fallback;
}

/** Arithmetic mean (0 when empty). */
inline double
seriesMean(const Series &s)
{
    return seriesStats(s).mean();
}

/** Largest absolute value in the series (0 when empty). */
inline double
seriesAbsMax(const Series &s)
{
    RunningStats st;
    for (const auto &p : s)
        st.add(std::fabs(p.second));
    return st.max();
}

} // namespace ecov::bench

#endif // ECOV_BENCH_COMMON_SERIES_STATS_H
