#include "common/scenarios.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "carbon/region_traces.h"
#include "core/ecolib.h"
#include "core/ecovisor.h"
#include "policies/battery_policies.h"
#include "policies/carbon_budget.h"
#include "policies/carbon_reduction.h"
#include "policies/solar_cap.h"
#include "sim/simulation.h"
#include "util/rng.h"
#include "util/stats.h"
#include "workloads/spark_job.h"
#include "workloads/straggler_job.h"
#include "workloads/web_application.h"

namespace ecov::bench {

namespace {

using core::AppShareConfig;
using core::Ecovisor;

/** Copy a telemetry series out of a (soon to be destroyed) store. */
Series
copySeries(const ts::TimeSeries &ts)
{
    Series out;
    out.reserve(ts.size());
    for (const auto &s : ts.samples())
        out.emplace_back(s.time_s, s.value);
    return out;
}

power::ServerPowerConfig
microserver()
{
    return power::ServerPowerConfig{4, 1.35, 5.0, 0.0};
}

} // namespace

// ---------------------------------------------------------------------
// Figures 4 and 5.
// ---------------------------------------------------------------------

BatchRunResult
runBatchScenario(const wl::BatchJobConfig &job_config,
                 const BatchRunConfig &run, const ScenarioTuning &tuning)
{
    auto signal = carbon::makeCaisoLikeTrace(8, run.trace_seed);
    energy::GridConnection grid(&signal);
    cop::Cluster cluster(32, microserver());
    energy::PhysicalEnergySystem phys(&grid, nullptr, std::nullopt);
    Ecovisor eco(&cluster, &phys);
    const api::AppHandle app_h =
        eco.tryAddApp(job_config.app, AppShareConfig{}).value();

    wl::BatchJob job(&cluster, job_config);

    // Threshold over a 48 h window starting at the arrival, as in the
    // paper's experimental setup.
    double threshold = signal.intensityPercentile(
        run.threshold_pct, run.arrival_s % signal.period(),
        run.arrival_s % signal.period() + 48 * 3600);

    std::unique_ptr<policy::BatchPolicy> pol;
    switch (run.kind) {
      case BatchPolicyKind::Agnostic:
        pol = std::make_unique<policy::CarbonAgnosticPolicy>(&eco, &job);
        break;
      case BatchPolicyKind::SuspendResume:
        pol = std::make_unique<policy::SuspendResumePolicy>(&eco, &job,
                                                            threshold);
        break;
      case BatchPolicyKind::WaitAndScale:
        pol = std::make_unique<policy::WaitAndScalePolicy>(
            &eco, &job, threshold, run.scale);
        break;
    }

    sim::Simulation simul(tuning.tick_s, run.arrival_s);
    simul.addListener([&](TimeS t, TimeS dt) { pol->onTick(t, dt); },
                      sim::TickPhase::Policy);
    simul.addListener([&](TimeS t, TimeS dt) { job.onTick(t, dt); },
                      sim::TickPhase::Workload);
    eco.attach(simul);

    job.start(run.arrival_s);
    const TimeS deadline = run.arrival_s + run.horizon_s;
    while (!job.done() && simul.now() < deadline)
        simul.step();

    BatchRunResult result;
    result.completed = job.done();
    result.runtime_s = job.done() ? job.runtime()
                                  : simul.now() - run.arrival_s;
    result.carbon_g = eco.ves(app_h)->totalCarbonG();
    return result;
}

BatchAggregate
aggregateBatchRuns(const wl::BatchJobConfig &job, BatchRunConfig run,
                   int runs, std::uint64_t arrival_seed,
                   const ScenarioTuning &tuning)
{
    Rng rng(arrival_seed);
    RunningStats runtime_h, carbon_g;
    for (int i = 0; i < runs; ++i) {
        run.arrival_s = rng.uniformInt(0, 4 * 24 * 3600);
        auto r = runBatchScenario(job, run, tuning);
        runtime_h.add(static_cast<double>(r.runtime_s) / 3600.0);
        carbon_g.add(r.carbon_g);
    }
    return BatchAggregate{runtime_h.mean(), runtime_h.stddev(),
                          carbon_g.mean(), carbon_g.stddev()};
}

MultiTenantBatchResult
runMultiTenantBatch(std::uint64_t seed, const ScenarioTuning &tuning)
{
    // Short horizon: half the trace and horizon, quarter-size jobs —
    // both jobs still pause and resume at least once.
    const int days = tuning.short_horizon ? 2 : 4;
    const double work_scale = tuning.short_horizon ? 0.25 : 1.0;

    auto signal = carbon::makeCaisoLikeTrace(days, seed);
    energy::GridConnection grid(&signal);
    cop::Cluster cluster(48, microserver());
    energy::PhysicalEnergySystem phys(&grid, nullptr, std::nullopt);
    Ecovisor eco(&cluster, &phys);
    eco.tryAddApp("ml", AppShareConfig{}).value();
    eco.tryAddApp("blast", AppShareConfig{}).value();

    auto ml_cfg =
        wl::mlTrainingConfig("ml", 4.0 * 5.0 * 3600.0 * work_scale);
    auto blast_cfg =
        wl::blastConfig("blast", 8.0 * 3.0 * 3600.0 * work_scale);
    wl::BatchJob ml(&cluster, ml_cfg);
    wl::BatchJob blast(&cluster, blast_cfg);

    double ml_thr = signal.intensityPercentile(30.0, 0, 48 * 3600);
    double blast_thr = signal.intensityPercentile(33.0, 0, 48 * 3600);
    policy::WaitAndScalePolicy ml_pol(&eco, &ml, ml_thr, 2.0);
    policy::WaitAndScalePolicy blast_pol(&eco, &blast, blast_thr, 3.0);

    sim::Simulation simul(tuning.tick_s);
    simul.addListener(
        [&](TimeS t, TimeS dt) {
            if (!ml.done())
                ml_pol.onTick(t, dt);
            if (!blast.done())
                blast_pol.onTick(t, dt);
        },
        sim::TickPhase::Policy);
    simul.addListener(
        [&](TimeS t, TimeS dt) {
            ml.onTick(t, dt);
            blast.onTick(t, dt);
        },
        sim::TickPhase::Workload);
    eco.attach(simul);

    ml.start(0);
    blast.start(0);
    while ((!ml.done() || !blast.done()) &&
           simul.now() < static_cast<TimeS>(days) * 24 * 3600)
        simul.step();

    MultiTenantBatchResult out;
    out.carbon_signal = copySeries(eco.db().series("grid_carbon"));
    out.ml_containers = copySeries(eco.db().series("app_containers", "ml"));
    out.blast_containers =
        copySeries(eco.db().series("app_containers", "blast"));
    out.cluster_power_w = copySeries(eco.db().series("cluster_power_w"));
    out.ml_threshold = ml_thr;
    out.blast_threshold = blast_thr;
    return out;
}

// ---------------------------------------------------------------------
// Figures 6 and 7.
// ---------------------------------------------------------------------

WebBudgetResult
runWebBudgetScenario(bool dynamic_budget, std::uint64_t seed,
                     const ScenarioTuning &tuning)
{
    // Short horizon: one diurnal cycle instead of two.
    const int days = tuning.short_horizon ? 1 : 2;

    auto signal =
        carbon::makeRegionTrace(carbon::californiaProfile(), days, seed);
    energy::GridConnection grid(&signal);
    cop::Cluster cluster(32, microserver());
    energy::PhysicalEnergySystem phys(&grid, nullptr, std::nullopt);
    Ecovisor eco(&cluster, &phys);
    const api::AppHandle web1_h =
        eco.tryAddApp("web1", AppShareConfig{}).value();
    const api::AppHandle web2_h =
        eco.tryAddApp("web2", AppShareConfig{}).value();

    auto trace1 = wl::makeRequestTrace(wl::webApp1Workload(), seed + 1);
    auto trace2 = wl::makeRequestTrace(wl::webApp2Workload(), seed + 2);

    wl::WebAppConfig wc1;
    wc1.app = "web1";
    wc1.slo_p95_ms = 60.0;
    wc1.max_workers = 32;
    wl::WebAppConfig wc2 = wc1;
    wc2.app = "web2";
    wc2.slo_p95_ms = 70.0;

    wl::WebApplication app1(&cluster, &trace1, wc1);
    wl::WebApplication app2(&cluster, &trace2, wc2);

    // The paper uses 20 mgCO2/s on its testbed; our microserver-scale
    // cluster draws ~40 W at saturation, so the binding equivalent is
    // ~0.8 mg/s per application: generous at typical intensity (the
    // static policy over-provisions when carbon is cheap) but binding
    // during the evening carbon ramp.
    const double rate = 0.8e-3;
    const TimeS horizon = static_cast<TimeS>(days) * 24 * 3600;

    policy::StaticCarbonRatePolicy st1(&eco, &app1, rate);
    policy::StaticCarbonRatePolicy st2(&eco, &app2, rate);
    policy::DynamicCarbonBudgetPolicy dy1(&eco, &app1, rate, horizon);
    policy::DynamicCarbonBudgetPolicy dy2(&eco, &app2, rate, horizon);

    Series rate1, rate2, load1, load2;

    sim::Simulation simul(tuning.tick_s);
    simul.addListener(
        [&](TimeS t, TimeS dt) {
            if (dynamic_budget) {
                dy1.onTick(t, dt);
                dy2.onTick(t, dt);
            } else {
                st1.onTick(t, dt);
                st2.onTick(t, dt);
            }
        },
        sim::TickPhase::Policy);
    simul.addListener(
        [&](TimeS t, TimeS dt) {
            app1.onTick(t, dt);
            app2.onTick(t, dt);
            load1.emplace_back(t, app1.offeredLoad(t));
            load2.emplace_back(t, app2.offeredLoad(t));
        },
        sim::TickPhase::Workload);
    eco.attach(simul);
    simul.addListener(
        [&](TimeS t, TimeS dt) {
            const auto &s1 = eco.ves(web1_h)->lastSettlement();
            const auto &s2 = eco.ves(web2_h)->lastSettlement();
            rate1.emplace_back(t, s1.carbon_g / static_cast<double>(dt));
            rate2.emplace_back(t, s2.carbon_g / static_cast<double>(dt));
        },
        sim::TickPhase::Telemetry);

    app1.start(4);
    app2.start(4);
    simul.runUntil(horizon);

    WebBudgetResult out;
    out.carbon_signal = copySeries(eco.db().series("grid_carbon"));
    out.target_rate_g_s = rate;

    auto fill = [&](wl::WebApplication &app, Series rate_series,
                    Series load_series, const std::string &name,
                    api::AppHandle h) {
        WebAppMeasurements m;
        for (const auto &p : app.latencyLog())
            m.latency_p95_ms.emplace_back(p.first, p.second);
        m.workers = copySeries(eco.db().series("app_containers", name));
        m.carbon_rate_g_s = std::move(rate_series);
        m.workload_rps = std::move(load_series);
        m.slo_violations = app.sloViolations();
        m.carbon_g = eco.ves(h)->totalCarbonG();
        return m;
    };
    out.app1 =
        fill(app1, std::move(rate1), std::move(load1), "web1", web1_h);
    out.app2 =
        fill(app2, std::move(rate2), std::move(load2), "web2", web2_h);
    return out;
}

// ---------------------------------------------------------------------
// Figures 8 and 9.
// ---------------------------------------------------------------------

BatteryScenarioResult
runBatteryScenario(bool dynamic, std::uint64_t seed,
                   const ScenarioTuning &tuning)
{
    // Short horizon: two solar days instead of three, and a Spark job
    // scaled so it still finishes within the window under the static
    // policy (keeping the runtime-reduction metric meaningful).
    const int days = tuning.short_horizon ? 2 : 3;
    const double work_scale = tuning.short_horizon ? 0.5 : 1.0;

    carbon::TraceCarbonSignal signal({{0, 250.0}});
    energy::GridConnection grid(&signal);

    energy::SolarTraceConfig sc;
    sc.peak_w = 80.0; // cluster-level solar (split between the apps)
    sc.cloudiness = 0.25;
    sc.days = days;
    auto solar = energy::makeSolarTrace(sc, seed);

    cop::Cluster cluster(32, microserver());
    energy::BatteryConfig phys_batt;
    phys_batt.capacity_wh = 400.0;
    phys_batt.max_charge_w = 100.0;
    phys_batt.max_discharge_w = 400.0;
    energy::PhysicalEnergySystem phys(&grid, &solar, phys_batt);
    Ecovisor eco(&cluster, &phys);

    // Equal split of solar and battery (Figure 8a).
    auto share = [](double frac) {
        AppShareConfig s;
        s.solar_fraction = frac;
        energy::BatteryConfig b;
        b.capacity_wh = 200.0;
        b.max_charge_w = 50.0;
        b.max_discharge_w = 200.0;
        b.initial_soc = 0.60;
        s.battery = b;
        return s;
    };
    const api::AppHandle spark_h =
        eco.tryAddApp("spark", share(0.5)).value();
    const api::AppHandle web_h = eco.tryAddApp("web", share(0.5)).value();

    wl::SparkJobConfig jc;
    jc.app = "spark";
    jc.total_work = 12.0 * 10.0 * 3600.0 * work_scale;
    jc.checkpoint_interval_s = 900;
    jc.max_workers = 48;
    wl::SparkJob spark(&cluster, jc);

    // Monitoring workload: strictly day-time (the app logs solar
    // generation, so it is dormant at night — §5.3.1). Build the
    // trace from a solar-shaped bell plus noise.
    std::vector<wl::RequestTrace::Point> wl_pts;
    {
        Rng wl_rng(seed + 7);
        const TimeS day = 24 * 3600;
        for (TimeS t = 0; t < days * day; t += 60) {
            double hour = static_cast<double>(t % day) / 3600.0;
            double rate = 0.2; // dormant baseline
            if (hour > 6.5 && hour < 17.5) {
                double x = (hour - 6.5) / 11.0;
                rate = 230.0 * std::sin(x * 3.14159265) +
                       wl_rng.gaussian(0.0, 12.0);
                rate = std::max(0.2, rate);
            }
            wl_pts.push_back({t, rate});
        }
    }
    wl::RequestTrace trace(std::move(wl_pts),
                           static_cast<TimeS>(days) * 24 * 3600);
    wl::WebAppConfig wc;
    wc.app = "web";
    wc.worker_capacity_rps = 40.0;
    wc.slo_p95_ms = 100.0;
    wc.max_workers = 24;
    wl::WebApplication web(&cluster, &trace, wc);

    policy::BatteryPolicyConfig pc;
    pc.guaranteed_power_w = 5.0;
    pc.per_worker_w = 1.25;

    policy::StaticBatteryPolicy spark_static(
        &eco, "spark", [&](int n) { spark.setWorkers(n); }, pc);
    policy::StaticBatteryPolicy web_static(
        &eco, "web", [&](int n) { web.setWorkers(std::max(1, n)); }, pc);
    policy::DynamicSparkBatteryPolicy spark_dynamic(&eco, &spark, pc);
    policy::DynamicWebBatteryPolicy web_dynamic(&eco, &web, pc);

    Series spark_workers, web_workers, spark_batt_w, web_batt_w;

    sim::Simulation simul(tuning.tick_s);
    simul.addListener(
        [&](TimeS t, TimeS dt) {
            if (dynamic) {
                if (!spark.done())
                    spark_dynamic.onTick(t, dt);
                web_dynamic.onTick(t, dt);
            } else {
                if (!spark.done())
                    spark_static.onTick(t, dt);
                web_static.onTick(t, dt);
            }
        },
        sim::TickPhase::Policy);
    simul.addListener(
        [&](TimeS t, TimeS dt) {
            spark.onTick(t, dt);
            web.onTick(t, dt);
        },
        sim::TickPhase::Workload);
    eco.attach(simul);
    simul.addListener(
        [&](TimeS t, TimeS) {
            spark_workers.emplace_back(t, spark.workers());
            web_workers.emplace_back(t, web.workers());
            const auto &ss = eco.ves(spark_h)->lastSettlement();
            const auto &ws = eco.ves(web_h)->lastSettlement();
            spark_batt_w.emplace_back(
                t, ss.batt_charge_solar_w + ss.batt_charge_grid_w -
                       ss.batt_discharge_w);
            web_batt_w.emplace_back(
                t, ws.batt_charge_solar_w + ws.batt_charge_grid_w -
                       ws.batt_discharge_w);
        },
        sim::TickPhase::Telemetry);

    spark.start(0);
    web.start(1);
    simul.runUntil(static_cast<TimeS>(days) * 24 * 3600);

    BatteryScenarioResult out;
    out.solar_w = copySeries(eco.db().series("solar_w"));
    for (TimeS t = 0; t < static_cast<TimeS>(days) * 24 * 3600; t += 300)
        out.web_workload.emplace_back(t, trace.rateAt(t));
    out.spark_workers = std::move(spark_workers);
    out.web_workers = std::move(web_workers);
    for (const auto &p : web.latencyLog())
        out.web_latency_ms.emplace_back(p.first, p.second);
    out.spark_soc = copySeries(eco.db().series("app_batt_soc", "spark"));
    out.web_soc = copySeries(eco.db().series("app_batt_soc", "web"));
    out.spark_batt_w = std::move(spark_batt_w);
    out.web_batt_w = std::move(web_batt_w);
    out.spark_completed = spark.done();
    out.spark_runtime_s =
        spark.done() ? spark.completionTime() : simul.now();
    out.web_slo_violations = web.sloViolations();
    out.total_grid_wh = eco.ves(spark_h)->totalGridWh() +
                        eco.ves(web_h)->totalGridWh();
    return out;
}

// ---------------------------------------------------------------------
// Figures 10 and 11.
// ---------------------------------------------------------------------

SolarCapResult
runSolarCapScenario(SolarPolicyKind kind, double solar_fraction_pct,
                    std::uint64_t seed, bool inject_stragglers,
                    const ScenarioTuning &tuning)
{
    // The trace doubles as the completion deadline; the job normally
    // finishes within a day or two, so the short trace stays generous.
    const int days = tuning.short_horizon ? 10 : 30;

    carbon::TraceCarbonSignal signal({{0, 250.0}});
    energy::GridConnection grid(&signal);

    energy::SolarTraceConfig sc;
    // Nominal (100 %) peak is ~1.8x the job's full-power draw
    // (10 workers x 1.25 W), mirroring Figure 10(a)'s trace, whose
    // peak comfortably exceeds the 10 nodes' maximum power.
    sc.peak_w = 22.5;
    sc.cloudiness = 0.15;
    sc.days = days;
    auto solar = energy::makeSolarTrace(sc, seed);
    solar.setScale(solar_fraction_pct / 100.0);

    cop::Cluster cluster(24, microserver());
    energy::PhysicalEnergySystem phys(&grid, &solar, std::nullopt);
    Ecovisor eco(&cluster, &phys);
    AppShareConfig share;
    share.solar_fraction = 1.0;
    const api::AppHandle par_h = eco.tryAddApp("par", share).value();

    // Sized so the job fits within one day's daylight at every sweep
    // point, as the paper's single-day experiment does — otherwise
    // overnight idling would dominate both runtime and energy.
    wl::StragglerJobConfig jc;
    jc.app = "par";
    jc.workers = 10;
    // The straggler-mitigation variant runs a longer job so that it
    // is still in flight when midday excess solar appears.
    jc.rounds = inject_stragglers ? 4 : 3;
    if (tuning.short_horizon)
        jc.rounds -= 1;
    jc.round_work = inject_stragglers ? 900.0 : 700.0;
    jc.straggler_prob = inject_stragglers ? 0.3 : 0.25;
    jc.straggler_rate = inject_stragglers ? 0.5 : 0.6;
    jc.seed = seed + 3;
    wl::StragglerJob job(&cluster, jc);

    policy::StaticSolarCapPolicy st(&eco, &job);
    policy::DynamicSolarCapPolicy dy(&eco, &job);
    policy::StragglerMitigationPolicy mi(&eco, &job);

    Series mean_caps;

    sim::Simulation simul(tuning.tick_s, 6 * 3600); // start at sunrise
    simul.addListener(
        [&](TimeS t, TimeS dt) {
            switch (kind) {
              case SolarPolicyKind::StaticCaps:
                st.onTick(t, dt);
                break;
              case SolarPolicyKind::DynamicCaps:
                dy.onTick(t, dt);
                break;
              case SolarPolicyKind::StragglerMitigation:
                mi.onTick(t, dt);
                break;
            }
        },
        sim::TickPhase::Policy);
    simul.addListener([&](TimeS t, TimeS dt) { job.onTick(t, dt); },
                      sim::TickPhase::Workload);
    eco.attach(simul);
    const cop::AppIndex par_cop = eco.copAppIndex(par_h);
    simul.addListener(
        [&](TimeS t, TimeS) {
            const int count = cluster.appContainerCount(par_cop);
            if (count == 0)
                return;
            double sum = 0.0;
            cluster.forEachAppContainer(
                par_cop, [&](const cop::Container &c) {
                    double cap = eco.getContainerPowercap(c.id);
                    sum += std::isfinite(cap)
                               ? cap
                               : cluster.maxContainerPowerW(c.id);
                });
            mean_caps.emplace_back(t,
                                   sum / static_cast<double>(count));
        },
        sim::TickPhase::Telemetry);

    job.start(6 * 3600);
    const TimeS deadline = static_cast<TimeS>(days) * 24 * 3600;
    while (!job.done() && simul.now() < deadline)
        simul.step();

    SolarCapResult out;
    out.completed = job.done();
    out.runtime_s = job.done() ? job.completionTime() - job.startTime()
                               : simul.now() - job.startTime();
    out.energy_wh = eco.ves(par_h)->totalEnergyWh();
    out.useful_work = static_cast<double>(jc.rounds) *
                      static_cast<double>(jc.workers) * jc.round_work;
    out.solar_w = copySeries(eco.db().series("solar_w"));
    out.container_caps_w = std::move(mean_caps);
    out.replicas = job.replicasIssued();
    return out;
}

} // namespace ecov::bench
