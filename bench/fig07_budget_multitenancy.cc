/**
 * @file
 * Figure 7 reproduction: multi-tenancy of carbon budgeting policies —
 * achieved carbon rate (a) and worker counts (b) for both web
 * applications under the dynamic budgeting policy, against the static
 * system policy's target rate.
 */

#include <cstdio>

#include "common/scenarios.h"
#include "util/table.h"

using namespace ecov;
using namespace ecov::bench;

int
main()
{
    std::printf("=== Figure 7: multi-tenant carbon budgeting ===\n");

    auto st = runWebBudgetScenario(false, 21);
    auto dy = runWebBudgetScenario(true, 21);

    std::printf("\n(a) carbon rate (time_h,web1_mg_s,web2_mg_s,"
                "system_mg_s,target_mg_s):\n");
    {
        CsvWriter csv(stdout, {"time_h", "web1", "web2", "system_web1",
                               "target"});
        std::size_t n = std::min(dy.app1.carbon_rate_g_s.size(),
                                 dy.app2.carbon_rate_g_s.size());
        for (std::size_t i = 0; i < n; i += 30) {
            csv.row({static_cast<double>(
                         dy.app1.carbon_rate_g_s[i].first) / 3600.0,
                     dy.app1.carbon_rate_g_s[i].second * 1000.0,
                     dy.app2.carbon_rate_g_s[i].second * 1000.0,
                     st.app1.carbon_rate_g_s[i].second * 1000.0,
                     dy.target_rate_g_s * 1000.0});
        }
    }

    std::printf("\n(b) workers (time_h,web1_dynamic,web2_dynamic,"
                "web1_system):\n");
    {
        CsvWriter csv(stdout,
                      {"time_h", "web1_dyn", "web2_dyn", "web1_sys"});
        std::size_t n = std::min({dy.app1.workers.size(),
                                  dy.app2.workers.size(),
                                  st.app1.workers.size()});
        for (std::size_t i = 0; i < n; i += 30) {
            csv.row({static_cast<double>(dy.app1.workers[i].first) /
                         3600.0,
                     dy.app1.workers[i].second,
                     dy.app2.workers[i].second,
                     st.app1.workers[i].second});
        }
    }

    std::printf(
        "\nPaper shape check: dynamic apps run below the target rate "
        "most of the time (only enough workers for their SLO), while "
        "the system policy holds the rate regardless of load; the two "
        "apps' worker counts differ with their workloads.\n");
    return 0;
}
