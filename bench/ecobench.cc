/**
 * @file
 * ecobench: the registry-driven scenario runner.
 *
 *   ecobench list [--format=json]
 *   ecobench run <name...|all> [--seed=N] [--horizon=full|short]
 *                [--tick=SECONDS] [--format=human|json] [--out=FILE]
 *                [--figures] [--selfcheck]
 *   ecobench diff <baseline.json> <current.json> [--tolerance=PCT]
 *                [--perf-tolerance=PCT]
 *
 * `run --format=json` emits the schema described in
 * common/registry.h; `diff` compares two such reports and exits
 * non-zero on regressions, so CI needs no extra runtime to gate on
 * bench results. Exit codes: 0 success, 1 regression/failure, 2 usage.
 */

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/bench_diff.h"
#include "common/registry.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/table.h"

namespace ecov::bench {
namespace {

int
usage(FILE *to)
{
    std::fprintf(
        to,
        "ecobench — ecovisor scenario runner\n"
        "\n"
        "usage:\n"
        "  ecobench list [--format=json]\n"
        "  ecobench run <name...|all> [--seed=N] "
        "[--horizon=full|short]\n"
        "               [--tick=SECONDS] [--format=human|json]\n"
        "               [--out=FILE] [--figures] [--selfcheck]\n"
        "  ecobench diff <baseline.json> <current.json> "
        "[--tolerance=PCT]\n"
        "               [--perf-tolerance=PCT]\n"
        "\n"
        "run options:\n"
        "  --seed=N        override the scenario's default seed\n"
        "  --horizon=H     full (paper scale, default) or short (CI)\n"
        "  --tick=S        simulation tick length in seconds "
        "(default 60)\n"
        "  --format=F      human (default) or json\n"
        "  --out=FILE      write the JSON report to FILE (implies "
        "--format=json)\n"
        "  --figures       also print the per-figure tables/series\n"
        "  --selfcheck     run every selected scenario twice and "
        "fail\n"
        "                  (exit 1) unless the domain metrics are "
        "bit-identical\n"
        "                  — the determinism contract at "
        "--tolerance=0\n"
        "\n"
        "diff options:\n"
        "  --tolerance=PCT       max relative drift for domain "
        "metrics (default 0.1)\n"
        "  --perf-tolerance=PCT  also enforce perf metrics "
        "(default: warn only)\n"
        "  --abs-epsilon=X       absolute slack: deltas <= X never "
        "count, and X floors\n"
        "                        the relative-delta denominator for "
        "near-zero baselines\n"
        "                        (default 1e-9; raise when comparing "
        "across compilers)\n");
    return to == stdout ? 0 : 2;
}

/** "--name=value" parser; true when `arg` starts with "--name=". */
bool
optValue(const std::string &arg, const char *name, std::string *value)
{
    const std::string prefix = std::string("--") + name + "=";
    if (arg.rfind(prefix, 0) != 0)
        return false;
    *value = arg.substr(prefix.size());
    return true;
}

/** Strict non-negative integer parse: digits only, no sign/space. */
bool
parseUint(const std::string &s, std::uint64_t *out)
{
    if (s.empty() || !std::isdigit(static_cast<unsigned char>(s[0])))
        return false;
    char *end = nullptr;
    errno = 0;
    unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (errno != 0 || end != s.c_str() + s.size())
        return false;
    *out = v;
    return true;
}

/** Strict finite non-negative double parse; rejects sign/space/inf. */
bool
parseNonNegDouble(const std::string &s, double *out)
{
    if (s.empty() || !(std::isdigit(static_cast<unsigned char>(s[0])) ||
                       s[0] == '.'))
        return false;
    char *end = nullptr;
    errno = 0;
    double v = std::strtod(s.c_str(), &end);
    if (errno != 0 || end != s.c_str() + s.size() ||
        !std::isfinite(v) || v < 0.0)
        return false;
    *out = v;
    return true;
}

int
cmdList(const std::vector<std::string> &args)
{
    bool json = false;
    for (const auto &a : args) {
        std::string v;
        if (optValue(a, "format", &v)) {
            if (v == "json")
                json = true;
            else if (v != "human") {
                std::fprintf(stderr, "ecobench: unknown format %s\n",
                             v.c_str());
                return 2;
            }
        } else {
            std::fprintf(stderr, "ecobench: unknown list option %s\n",
                         a.c_str());
            return 2;
        }
    }

    auto scenarios = ScenarioRegistry::instance().all();
    if (json) {
        JsonWriter w;
        w.beginObject();
        w.key("scenarios");
        w.beginArray();
        for (const auto *s : scenarios) {
            w.beginObject();
            w.key("name");
            w.value(s->name);
            w.key("description");
            w.value(s->description);
            w.key("default_seed");
            w.value(s->default_seed);
            w.key("params");
            w.beginArray();
            auto params = commonParamSpecs();
            params.insert(params.end(), s->extra_params.begin(),
                          s->extra_params.end());
            for (const auto &p : params) {
                w.beginObject();
                w.key("name");
                w.value(p.name);
                w.key("description");
                w.value(p.description);
                w.key("default");
                w.value(p.default_value);
                w.endObject();
            }
            w.endArray();
            w.endObject();
        }
        w.endArray();
        w.endObject();
        std::printf("%s\n", w.str().c_str());
        return 0;
    }

    TextTable t({"scenario", "seed", "description"});
    for (const auto *s : scenarios)
        t.addRow({s->name, std::to_string(s->default_seed),
                  s->description});
    t.print();
    std::printf("\n%zu scenarios. Common params: seed, horizon "
                "(full|short), tick.\n",
                scenarios.size());
    return 0;
}

int
cmdRun(const std::vector<std::string> &args)
{
    std::vector<std::string> names;
    bool run_all = false;
    bool json = false;
    bool figures = false;
    bool selfcheck = false;
    bool seed_overridden = false;
    std::uint64_t seed = 0;
    Horizon horizon = Horizon::Full;
    TimeS tick_s = 60;
    std::string out_path;

    for (const auto &a : args) {
        std::string v;
        if (optValue(a, "seed", &v)) {
            if (!parseUint(v, &seed)) {
                std::fprintf(stderr, "ecobench: bad seed '%s'\n",
                             v.c_str());
                return 2;
            }
            seed_overridden = true;
        } else if (optValue(a, "horizon", &v)) {
            if (!parseHorizon(v, &horizon)) {
                std::fprintf(stderr, "ecobench: unknown horizon %s\n",
                             v.c_str());
                return 2;
            }
        } else if (optValue(a, "tick", &v)) {
            std::uint64_t t = 0;
            if (!parseUint(v, &t) || t == 0 || t > 24 * 3600) {
                std::fprintf(stderr, "ecobench: bad tick '%s'\n",
                             v.c_str());
                return 2;
            }
            tick_s = static_cast<TimeS>(t);
        } else if (optValue(a, "format", &v)) {
            if (v == "json")
                json = true;
            else if (v != "human") {
                std::fprintf(stderr, "ecobench: unknown format %s\n",
                             v.c_str());
                return 2;
            }
        } else if (optValue(a, "out", &v)) {
            out_path = v;
            json = true; // a report file is always JSON
        } else if (a == "--figures") {
            figures = true;
        } else if (a == "--selfcheck") {
            selfcheck = true;
        } else if (a == "all") {
            run_all = true;
        } else if (!a.empty() && a[0] == '-') {
            std::fprintf(stderr, "ecobench: unknown run option %s\n",
                         a.c_str());
            return 2;
        } else {
            names.push_back(a);
        }
    }

    // The figure output and the JSON document share stdout; only
    // allow the combination when the report goes to a file.
    if (json && figures && out_path.empty()) {
        std::fprintf(stderr,
                     "ecobench: --figures with --format=json needs "
                     "--out=FILE (figures and JSON would interleave "
                     "on stdout)\n");
        return 2;
    }

    auto &registry = ScenarioRegistry::instance();
    std::vector<const Scenario *> selected;
    if (run_all) {
        if (!names.empty()) {
            std::fprintf(stderr,
                         "ecobench: 'all' cannot be combined with "
                         "scenario names\n");
            return 2;
        }
        selected = registry.all();
    } else {
        if (names.empty()) {
            std::fprintf(stderr,
                         "ecobench: run needs scenario names or "
                         "'all'\n");
            return 2;
        }
        for (const auto &n : names) {
            const Scenario *s = registry.find(n);
            if (!s) {
                std::fprintf(stderr,
                             "ecobench: unknown scenario '%s' (see "
                             "'ecobench list')\n",
                             n.c_str());
                return 1;
            }
            // Duplicate entries would collide in the report (diff
            // indexes scenarios by name).
            if (std::find(selected.begin(), selected.end(), s) !=
                selected.end()) {
                std::fprintf(stderr,
                             "ecobench: scenario '%s' given twice\n",
                             n.c_str());
                return 2;
            }
            selected.push_back(s);
        }
    }

    std::vector<ScenarioReport> reports;
    for (const Scenario *s : selected) {
        ScenarioOptions opts;
        opts.seed = seed_overridden ? seed : s->default_seed;
        opts.horizon = horizon;
        opts.tick_s = tick_s;
        opts.print_figures = figures;
        if (!json && !figures)
            std::printf("running %s ...\n", s->name.c_str());
        reports.push_back(runScenario(*s, opts));
        if (!selfcheck)
            continue;
        // Same scenario, same options, fresh world: any drift is a
        // determinism bug, reported at --tolerance=0 (bit equality;
        // perf metrics are wall-clock and exempt by definition).
        const ScenarioReport &first = reports.back();
        ScenarioReport second = runScenario(*s, opts);
        bool drifted = first.ticks != second.ticks ||
                       first.outcome.metrics.size() !=
                           second.outcome.metrics.size();
        if (!drifted) {
            for (std::size_t i = 0; i < first.outcome.metrics.size();
                 ++i) {
                const auto &a_m = first.outcome.metrics[i];
                const auto &b_m = second.outcome.metrics[i];
                std::uint64_t a_bits = 0, b_bits = 0;
                std::memcpy(&a_bits, &a_m.value, sizeof a_bits);
                std::memcpy(&b_bits, &b_m.value, sizeof b_bits);
                if (a_m.name != b_m.name || a_bits != b_bits) {
                    std::fprintf(stderr,
                                 "SELFCHECK FAIL: %s: %s = %.17g vs "
                                 "%.17g across identical runs\n",
                                 s->name.c_str(), a_m.name.c_str(),
                                 a_m.value, b_m.value);
                    drifted = true;
                }
            }
        } else {
            std::fprintf(stderr,
                         "SELFCHECK FAIL: %s: run shape differs "
                         "across identical runs\n",
                         s->name.c_str());
        }
        if (drifted)
            return 1;
        if (!json)
            std::printf("selfcheck %s: bit-identical across two "
                        "runs\n",
                        s->name.c_str());
    }

    if (json) {
        std::string doc =
            reportsToJson(reports, horizon, tick_s, figures);
        if (out_path.empty()) {
            std::printf("%s\n", doc.c_str());
        } else {
            std::ofstream out(out_path);
            out << doc << "\n";
            out.flush(); // surface late write errors (e.g. ENOSPC)
            if (!out) {
                std::fprintf(stderr, "ecobench: cannot write %s\n",
                             out_path.c_str());
                return 1;
            }
            std::fprintf(stderr, "report written to %s\n",
                         out_path.c_str());
        }
        return 0;
    }

    TextTable summary({"scenario", "wall_s", "ticks", "ticks/sec",
                       "metrics"});
    for (const auto &r : reports)
        summary.addRow({r.name, TextTable::fmt(r.wall_time_s, 3),
                        std::to_string(r.ticks),
                        TextTable::fmt(r.ticks_per_sec, 0),
                        std::to_string(r.outcome.metrics.size())});
    std::printf("\n");
    summary.print();

    for (const auto &r : reports) {
        std::printf("\n%s:\n", r.name.c_str());
        TextTable t({"metric", "value"});
        for (const auto &m : r.outcome.metrics)
            t.addRow({m.name, TextTable::fmt(m.value, 4)});
        for (const auto &m : r.outcome.perf)
            t.addRow({m.name + " (perf)", TextTable::fmt(m.value, 1)});
        t.print();
    }
    return 0;
}

/** Load + parse one report file; exits via return code on failure. */
std::optional<JsonValue>
loadReport(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "ecobench: cannot open %s\n",
                     path.c_str());
        return std::nullopt;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string error;
    auto doc = JsonValue::parse(ss.str(), &error);
    if (!doc)
        std::fprintf(stderr, "ecobench: %s: %s\n", path.c_str(),
                     error.c_str());
    return doc;
}

int
cmdDiff(const std::vector<std::string> &args)
{
    std::vector<std::string> paths;
    DiffOptions opts;
    for (const auto &a : args) {
        std::string v;
        if (optValue(a, "tolerance", &v)) {
            if (!parseNonNegDouble(v, &opts.tolerance_pct)) {
                std::fprintf(stderr, "ecobench: bad tolerance '%s'\n",
                             v.c_str());
                return 2;
            }
        } else if (optValue(a, "perf-tolerance", &v)) {
            if (!parseNonNegDouble(v, &opts.perf_tolerance_pct)) {
                std::fprintf(stderr,
                             "ecobench: bad perf-tolerance '%s'\n",
                             v.c_str());
                return 2;
            }
        } else if (optValue(a, "abs-epsilon", &v)) {
            if (!parseNonNegDouble(v, &opts.abs_epsilon)) {
                std::fprintf(stderr,
                             "ecobench: bad abs-epsilon '%s'\n",
                             v.c_str());
                return 2;
            }
        } else if (!a.empty() && a[0] == '-') {
            std::fprintf(stderr, "ecobench: unknown diff option %s\n",
                         a.c_str());
            return 2;
        } else {
            paths.push_back(a);
        }
    }
    if (paths.size() != 2) {
        std::fprintf(stderr,
                     "ecobench: diff needs exactly two report files\n");
        return 2;
    }

    auto baseline = loadReport(paths[0]);
    auto current = loadReport(paths[1]);
    if (!baseline || !current)
        return 1;

    DiffResult result = diffReports(*baseline, *current, opts);

    for (const auto &e : result.infos)
        std::printf("info: %s\n", e.describe().c_str());
    for (const auto &e : result.warnings)
        std::printf("warn: %s\n", e.describe().c_str());
    for (const auto &e : result.regressions)
        std::printf("FAIL: %s\n", e.describe().c_str());

    if (!result.ok()) {
        std::printf("\necobench diff: %zu regression(s) vs %s "
                    "(tolerance %.3f%%)\n",
                    result.regressions.size(), paths[0].c_str(),
                    opts.tolerance_pct);
        return 1;
    }
    std::printf("ecobench diff: OK (%zu warnings, %zu infos, "
                "tolerance %.3f%%)\n",
                result.warnings.size(), result.infos.size(),
                opts.tolerance_pct);
    return 0;
}

int
realMain(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty())
        return usage(stderr);
    const std::string cmd = args.front();
    args.erase(args.begin());
    if (cmd == "list")
        return cmdList(args);
    if (cmd == "run")
        return cmdRun(args);
    if (cmd == "diff")
        return cmdDiff(args);
    if (cmd == "help" || cmd == "--help" || cmd == "-h")
        return usage(stdout);
    std::fprintf(stderr, "ecobench: unknown command '%s'\n",
                 cmd.c_str());
    return usage(stderr);
}

} // namespace
} // namespace ecov::bench

int
main(int argc, char **argv)
{
    try {
        return ecov::bench::realMain(argc, argv);
    } catch (const ecov::FatalError &e) {
        std::fprintf(stderr, "ecobench: fatal: %s\n", e.what());
        return 1;
    }
}
