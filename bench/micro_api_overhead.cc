/**
 * @file
 * Microbenchmarks for the ecovisor's narrow API (google-benchmark):
 * the cost of the Table 1 getters/setters and of per-tick settlement
 * at various cluster sizes. Not a paper figure — a sanity check that
 * the control plane is cheap relative to the one-minute tick.
 */

#include <benchmark/benchmark.h>

#include "carbon/carbon_signal.h"
#include "core/ecovisor.h"

using namespace ecov;

namespace {

struct Rig
{
    carbon::TraceCarbonSignal signal{{{0, 200.0}}};
    energy::GridConnection grid{&signal};
    energy::SolarArray solar{{{0, 100.0}}, 24 * 3600};
    cop::Cluster cluster;
    energy::PhysicalEnergySystem phys;
    core::Ecovisor eco;
    std::vector<cop::ContainerId> ids;

    explicit Rig(int nodes, int apps, int containers_per_app)
        : cluster(nodes, power::ServerPowerConfig{4, 1.35, 5.0, 0.0}),
          phys(&grid, &solar, energy::BatteryConfig{}),
          eco(&cluster, &phys,
              core::EcovisorOptions{core::ExcessSolarPolicy::Curtail,
                                    /*record_telemetry=*/false})
    {
        for (int a = 0; a < apps; ++a) {
            core::AppShareConfig share;
            share.solar_fraction = 1.0 / apps;
            energy::BatteryConfig b;
            b.capacity_wh = 1440.0 / apps;
            b.max_charge_w = 360.0 / apps;
            b.max_discharge_w = 1440.0 / apps;
            b.initial_soc = 0.5;
            share.battery = b;
            std::string name = "app" + std::to_string(a);
            eco.addApp(name, share);
            for (int c = 0; c < containers_per_app; ++c) {
                auto id = cluster.createContainer(name, 1.0);
                if (id) {
                    cluster.setDemand(*id, 0.7);
                    ids.push_back(*id);
                }
            }
        }
    }
};

void
BM_GetGridCarbon(benchmark::State &state)
{
    Rig rig(8, 2, 4);
    for (auto _ : state)
        benchmark::DoNotOptimize(rig.eco.getGridCarbon());
}
BENCHMARK(BM_GetGridCarbon);

void
BM_GetSolarPower(benchmark::State &state)
{
    Rig rig(8, 2, 4);
    for (auto _ : state)
        benchmark::DoNotOptimize(rig.eco.getSolarPower("app0"));
}
BENCHMARK(BM_GetSolarPower);

void
BM_GetContainerPower(benchmark::State &state)
{
    Rig rig(8, 2, 4);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            rig.eco.getContainerPower(rig.ids.front()));
}
BENCHMARK(BM_GetContainerPower);

void
BM_SetContainerPowercap(benchmark::State &state)
{
    Rig rig(8, 2, 4);
    double cap = 0.5;
    for (auto _ : state) {
        rig.eco.setContainerPowercap(rig.ids.front(), cap);
        cap = cap >= 1.2 ? 0.5 : cap + 0.1;
    }
}
BENCHMARK(BM_SetContainerPowercap);

void
BM_SetBatteryChargeRate(benchmark::State &state)
{
    Rig rig(8, 2, 4);
    double rate = 0.0;
    for (auto _ : state) {
        rig.eco.setBatteryChargeRate("app0", rate);
        rate = rate >= 100.0 ? 0.0 : rate + 10.0;
    }
}
BENCHMARK(BM_SetBatteryChargeRate);

void
BM_SettleTick(benchmark::State &state)
{
    int apps = static_cast<int>(state.range(0));
    int per_app = static_cast<int>(state.range(1));
    Rig rig(64, apps, per_app);
    TimeS t = 0;
    for (auto _ : state) {
        rig.eco.settleTick(t, 60);
        t += 60;
    }
    state.SetLabel(std::to_string(apps) + " apps x " +
                   std::to_string(per_app) + " containers");
}
BENCHMARK(BM_SettleTick)
    ->Args({1, 4})
    ->Args({4, 8})
    ->Args({8, 16});

} // namespace

BENCHMARK_MAIN();
